//! The flight recorder: hierarchical spans, per-thread tracks, and a
//! Chrome trace-event exporter.
//!
//! The flat [`crate::Recorder`] answers "how much total time went into
//! phase X" — deterministically enough to diff run reports. This module
//! answers the questions the recorder cannot: *which worker* ran a job,
//! how long it waited in the queue, what nested under what, and what the
//! engine's throughput looked like over time. That telemetry is
//! inherently wall-clock shaped, so it lives in its own sink — never in
//! [`crate::MetricRegistry`] or [`crate::RunReport`] — and is exported
//! on demand as Chrome trace-event JSON (`chrome://tracing`, Perfetto)
//! via `--trace-out`, or rendered as ASCII by the `perf` binary.
//!
//! The recorder is process-global and off by default: one relaxed atomic
//! load per [`span`] call when disabled. Enabling it never changes
//! experiment *results* — instrumented code must treat the guards as
//! pure observers.
//!
//! # Span model
//!
//! * Every span gets a process-unique id and the id of the innermost
//!   span still open **on the same thread** (its parent; 0 for roots).
//!   Parent links therefore always nest: a child's `[start, end)`
//!   interval lies within its parent's.
//! * Every thread belongs to a named *track* (`main`, `worker-0`, ...).
//!   Worker pools call [`set_thread_track`] once per worker; unregistered
//!   threads are tracked under their `std::thread` name.
//! * When an allocation probe is installed (see [`set_alloc_probe`];
//!   `oslay-perf` provides one backed by its counting allocator), each
//!   span records the allocation calls/bytes its thread performed while
//!   it was open (inclusive of children, like the time itself).
//! * [`counter`] events carry periodic heartbeat samples (events
//!   simulated, events/sec, live heap bytes) as Chrome `C` events.

use std::cell::{Cell, RefCell};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{self, JsonValue};

/// A point-in-time reading from the allocation probe.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocSample {
    /// Allocation calls by the current thread.
    pub calls: u64,
    /// Bytes requested by the current thread.
    pub bytes: u64,
    /// Process-wide live heap bytes.
    pub live_bytes: u64,
}

/// A function sampling the current thread's allocation counters.
pub type AllocProbe = fn() -> AllocSample;

/// One completed span, resolved for export and tests.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Span name (e.g. `exec.job`).
    pub name: String,
    /// Name of the track (thread/worker) the span ran on.
    pub track: String,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 for roots.
    pub parent: u64,
    /// Start, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric arguments (`job`, `queue_wait_us`, `alloc_calls`, ...).
    pub args: Vec<(String, f64)>,
}

/// One counter sample (a Chrome `C` event).
#[derive(Clone, Debug, PartialEq)]
pub struct CounterEvent {
    /// Counter name (e.g. `sim.ev_per_s`).
    pub name: String,
    /// Name of the track the sample was taken on.
    pub track: String,
    /// Sample time, in nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: f64,
}

#[derive(Default)]
struct Inner {
    tracks: Vec<String>,
    spans: Vec<RawSpan>,
    counters: Vec<RawCounter>,
    out: Option<PathBuf>,
}

struct RawSpan {
    name: String,
    track: u32,
    id: u64,
    parent: u64,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(String, f64)>,
}

struct RawCounter {
    name: String,
    track: u32,
    ts_ns: u64,
    value: f64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static ALLOC_PROBE: OnceLock<AllocProbe> = OnceLock::new();

fn inner() -> &'static Mutex<Inner> {
    static INNER: OnceLock<Mutex<Inner>> = OnceLock::new();
    INNER.get_or_init(|| Mutex::new(Inner::default()))
}

/// The instant all trace timestamps are relative to (fixed at first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    // u32::MAX = this thread has not resolved its track id yet.
    static TRACK: Cell<u32> = const { Cell::new(u32::MAX) };
    // Ids of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Turns the recorder on. Until [`disable`], every [`crate::span`] also
/// records a flight span.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off (already-open guards still record on drop).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently capturing.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops all captured events, track registrations, and any pending
/// output path (tests use this to isolate captures).
pub fn reset() {
    let mut g = inner().lock().expect("flight recorder poisoned");
    g.tracks.clear();
    g.spans.clear();
    g.counters.clear();
    g.out = None;
    // Thread-local track ids index into `tracks`; invalidate this
    // thread's cache. Other threads re-register on their next span.
    TRACK.with(|t| t.set(u32::MAX));
}

/// Enables the recorder and remembers where [`flush`] should write the
/// Chrome trace (`--trace-out` plumbs through here).
pub fn set_output(path: &Path) {
    enable();
    inner().lock().expect("flight recorder poisoned").out = Some(path.to_owned());
}

/// Writes the Chrome trace to the path given to [`set_output`] and
/// returns it, or `Ok(None)` when no output is pending. Idempotent: the
/// pending path is consumed, so a second flush is a no-op.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn flush() -> io::Result<Option<PathBuf>> {
    let path = inner().lock().expect("flight recorder poisoned").out.take();
    let Some(path) = path else { return Ok(None) };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&path, chrome_trace().to_json_pretty())?;
    Ok(Some(path))
}

/// Installs the per-thread allocation probe (first caller wins; the
/// probe is a plain `fn` so `kobserve` stays dependency-free while
/// `oslay-perf` supplies the counting-allocator implementation).
pub fn set_alloc_probe(probe: AllocProbe) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Samples the installed allocation probe, if any.
#[must_use]
pub fn alloc_probe_sample() -> Option<AllocSample> {
    ALLOC_PROBE.get().map(|p| p())
}

fn register_track(name: &str) -> u32 {
    let mut g = inner().lock().expect("flight recorder poisoned");
    if let Some(i) = g.tracks.iter().position(|t| t == name) {
        return u32::try_from(i).expect("track count fits u32");
    }
    g.tracks.push(name.to_owned());
    u32::try_from(g.tracks.len() - 1).expect("track count fits u32")
}

/// Names the current thread's track (e.g. `worker-3`). Worker pools call
/// this once per spawned worker so spans carry per-worker attribution.
/// No-op while the recorder is disabled.
pub fn set_thread_track(name: &str) {
    if !is_enabled() {
        return;
    }
    let id = register_track(name);
    TRACK.with(|t| t.set(id));
}

fn current_track() -> u32 {
    let cached = TRACK.with(Cell::get);
    if cached != u32::MAX {
        // A reset() may have shrunk the track table; re-register if the
        // cached id no longer resolves.
        let g = inner().lock().expect("flight recorder poisoned");
        if (cached as usize) < g.tracks.len() {
            return cached;
        }
        drop(g);
    }
    let name = std::thread::current().name().unwrap_or("thread").to_owned();
    let id = register_track(&name);
    TRACK.with(|t| t.set(id));
    id
}

/// Opens a flight span. Inert (one atomic load) while the recorder is
/// disabled.
#[must_use]
pub fn span(name: &str) -> FlightGuard {
    span_with_args(name, &[])
}

/// Opens a flight span carrying numeric arguments (shown in the trace
/// viewer's detail pane).
#[must_use]
pub fn span_with_args(name: &str, args: &[(&str, f64)]) -> FlightGuard {
    if !is_enabled() {
        return FlightGuard { open: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let track = current_track();
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    FlightGuard {
        open: Some(OpenSpan {
            name: name.to_owned(),
            id,
            parent,
            track,
            start: Instant::now(),
            start_ns: now_ns(),
            alloc0: alloc_probe_sample(),
            args: args.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        }),
    }
}

/// Records one counter sample on the current thread's track. No-op while
/// disabled.
pub fn counter(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let track = current_track();
    let ts_ns = now_ns();
    let mut g = inner().lock().expect("flight recorder poisoned");
    g.counters.push(RawCounter {
        name: name.to_owned(),
        track,
        ts_ns,
        value,
    });
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    id: u64,
    parent: u64,
    track: u32,
    start: Instant,
    start_ns: u64,
    alloc0: Option<AllocSample>,
    args: Vec<(String, f64)>,
}

/// RAII guard for one flight span; records the completed event on drop.
#[derive(Debug)]
pub struct FlightGuard {
    open: Option<OpenSpan>,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let Some(mut open) = self.open.take() else {
            return;
        };
        let dur_ns = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards are dropped innermost-first, so our id is the top of
            // the stack; truncate defensively in case a guard leaked.
            if let Some(pos) = s.iter().rposition(|&id| id == open.id) {
                s.truncate(pos);
            }
        });
        if let (Some(before), Some(after)) = (open.alloc0, alloc_probe_sample()) {
            open.args.push((
                "alloc_calls".to_owned(),
                after.calls.saturating_sub(before.calls) as f64,
            ));
            open.args.push((
                "alloc_bytes".to_owned(),
                after.bytes.saturating_sub(before.bytes) as f64,
            ));
        }
        let mut g = inner().lock().expect("flight recorder poisoned");
        g.spans.push(RawSpan {
            name: open.name,
            track: open.track,
            id: open.id,
            parent: open.parent,
            start_ns: open.start_ns,
            dur_ns,
            args: open.args,
        });
    }
}

fn track_name(tracks: &[String], id: u32) -> String {
    tracks
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("track-{id}"))
}

/// Snapshot of all completed spans, with track ids resolved to names.
#[must_use]
pub fn span_events() -> Vec<SpanEvent> {
    let g = inner().lock().expect("flight recorder poisoned");
    g.spans
        .iter()
        .map(|s| SpanEvent {
            name: s.name.clone(),
            track: track_name(&g.tracks, s.track),
            id: s.id,
            parent: s.parent,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            args: s.args.clone(),
        })
        .collect()
}

/// Snapshot of all counter samples, with track ids resolved to names.
#[must_use]
pub fn counter_events() -> Vec<CounterEvent> {
    let g = inner().lock().expect("flight recorder poisoned");
    g.counters
        .iter()
        .map(|c| CounterEvent {
            name: c.name.clone(),
            track: track_name(&g.tracks, c.track),
            ts_ns: c.ts_ns,
            value: c.value,
        })
        .collect()
}

const NS_PER_US: f64 = 1_000.0;

/// Exports everything captured so far as a Chrome trace-event JSON value
/// (the `{"traceEvents": [...]}` object form). Loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev); all spans
/// are complete (`"ph": "X"`) events with microsecond timestamps,
/// preceded by one `thread_name` metadata record per track and
/// interleaved with `"ph": "C"` counter samples. Within each track,
/// events are sorted by timestamp.
#[must_use]
pub fn chrome_trace() -> JsonValue {
    let g = inner().lock().expect("flight recorder poisoned");
    let mut events: Vec<JsonValue> = Vec::new();
    for (tid, name) in g.tracks.iter().enumerate() {
        events.push(JsonValue::object([
            ("ph".to_owned(), JsonValue::Str("M".to_owned())),
            ("name".to_owned(), JsonValue::Str("thread_name".to_owned())),
            ("pid".to_owned(), JsonValue::Num(1.0)),
            ("tid".to_owned(), JsonValue::Num(tid as f64)),
            (
                "args".to_owned(),
                JsonValue::object([("name".to_owned(), JsonValue::Str(name.clone()))]),
            ),
        ]));
    }
    // (track, ts, is_counter, index) sort keys: per-track monotonic ts.
    let mut order: Vec<(u32, u64, bool, usize)> = Vec::new();
    for (i, s) in g.spans.iter().enumerate() {
        order.push((s.track, s.start_ns, false, i));
    }
    for (i, c) in g.counters.iter().enumerate() {
        order.push((c.track, c.ts_ns, true, i));
    }
    order.sort_by_key(|&(track, ts, _, _)| (track, ts));
    for (track, _, is_counter, i) in order {
        if is_counter {
            let c = &g.counters[i];
            events.push(JsonValue::object([
                ("ph".to_owned(), JsonValue::Str("C".to_owned())),
                ("name".to_owned(), JsonValue::Str(c.name.clone())),
                ("pid".to_owned(), JsonValue::Num(1.0)),
                ("tid".to_owned(), JsonValue::Num(f64::from(track))),
                ("ts".to_owned(), JsonValue::Num(c.ts_ns as f64 / NS_PER_US)),
                (
                    "args".to_owned(),
                    JsonValue::object([("value".to_owned(), JsonValue::Num(c.value))]),
                ),
            ]));
        } else {
            let s = &g.spans[i];
            let mut args = vec![
                ("id".to_owned(), JsonValue::Num(s.id as f64)),
                ("parent".to_owned(), JsonValue::Num(s.parent as f64)),
            ];
            args.extend(s.args.iter().map(|(k, v)| (k.clone(), JsonValue::Num(*v))));
            events.push(JsonValue::object([
                ("ph".to_owned(), JsonValue::Str("X".to_owned())),
                ("name".to_owned(), JsonValue::Str(s.name.clone())),
                ("cat".to_owned(), JsonValue::Str("oslay".to_owned())),
                ("pid".to_owned(), JsonValue::Num(1.0)),
                ("tid".to_owned(), JsonValue::Num(f64::from(s.track))),
                (
                    "ts".to_owned(),
                    JsonValue::Num(s.start_ns as f64 / NS_PER_US),
                ),
                (
                    "dur".to_owned(),
                    JsonValue::Num(s.dur_ns as f64 / NS_PER_US),
                ),
                ("args".to_owned(), JsonValue::Object(args)),
            ]));
        }
    }
    JsonValue::object([
        ("traceEvents".to_owned(), JsonValue::Array(events)),
        (
            "displayTimeUnit".to_owned(),
            JsonValue::Str("ms".to_owned()),
        ),
    ])
}

/// Aggregate facts about a validated trace file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// All events, including metadata.
    pub events: usize,
    /// Complete (`X`) span events.
    pub spans: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Distinct `tid`s seen.
    pub tracks: usize,
    /// Deepest span nesting observed on any one track.
    pub max_depth: usize,
}

fn event_num(e: &JsonValue, key: &str) -> Option<f64> {
    e.get(key).and_then(JsonValue::as_f64)
}

/// Validates Chrome trace-event JSON text: every event must carry a
/// phase; `X` events need a name and non-negative `ts`/`dur`; `B`/`E`
/// pairs must balance per track with matching names; within each track,
/// timestamps must be monotonically non-decreasing in file order and
/// every span interval must nest inside any span still open around it.
///
/// This is the schema checker behind `perf check` and the CI trace gate.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match v.get("traceEvents").and_then(JsonValue::as_array) {
        Some(a) => a,
        None => v
            .as_array()
            .ok_or("neither a traceEvents object nor a bare event array")?,
    };
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    // Per-tid state: last ts, open B/E names, open X end-times.
    let mut last_ts: Vec<(u64, f64)> = Vec::new();
    let mut be_stack: Vec<(u64, Vec<String>)> = Vec::new();
    let mut x_stack: Vec<(u64, Vec<f64>)> = Vec::new();
    fn entry<T: Default>(v: &mut Vec<(u64, T)>, tid: u64) -> &mut T {
        if let Some(i) = v.iter().position(|(t, _)| *t == tid) {
            &mut v[i].1
        } else {
            v.push((tid, T::default()));
            &mut v.last_mut().expect("just pushed").1
        }
    }
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = event_num(e, "tid").ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let ts = event_num(e, "ts").ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts {ts}"));
        }
        let prev = entry(&mut last_ts, tid);
        if ts + 1e-6 < *prev {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on tid {tid} (prev {prev})"
            ));
        }
        *prev = ts;
        match ph {
            "X" => {
                stats.spans += 1;
                let name = e
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: X without name"))?;
                let dur = event_num(e, "dur")
                    .ok_or_else(|| format!("event {i}: X \"{name}\" without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: X \"{name}\" negative dur {dur}"));
                }
                let ends = entry(&mut x_stack, tid);
                while ends.last().is_some_and(|&end| end <= ts + 1e-6) {
                    ends.pop();
                }
                if let Some(&enclosing) = ends.last() {
                    if ts + dur > enclosing + 1e-6 {
                        return Err(format!(
                            "event {i}: span \"{name}\" [{ts}, {}] escapes its enclosing \
                             span ending at {enclosing} on tid {tid}",
                            ts + dur
                        ));
                    }
                }
                ends.push(ts + dur);
                stats.max_depth = stats.max_depth.max(ends.len());
            }
            "B" => {
                let name = e
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: B without name"))?;
                entry(&mut be_stack, tid).push(name.to_owned());
            }
            "E" => {
                let open = entry(&mut be_stack, tid);
                let top = open
                    .pop()
                    .ok_or_else(|| format!("event {i}: E with no open B on tid {tid}"))?;
                if let Some(name) = e.get("name").and_then(JsonValue::as_str) {
                    if name != top {
                        return Err(format!(
                            "event {i}: E \"{name}\" does not match open B \"{top}\""
                        ));
                    }
                }
            }
            "C" => {
                stats.counters += 1;
                let ok = e
                    .get("args")
                    .map(|a| matches!(a, JsonValue::Object(m) if !m.is_empty()))
                    .unwrap_or(false);
                if !ok {
                    return Err(format!("event {i}: C without args"));
                }
            }
            "i" | "I" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (tid, open) in &be_stack {
        if let Some(name) = open.last() {
            return Err(format!("unbalanced B \"{name}\" left open on tid {tid}"));
        }
    }
    stats.tracks = last_ts.len();
    Ok(stats)
}

/// A trace file parsed back into a neutral form for the ASCII renderers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTrace {
    /// `(tid, track name)` from the metadata records.
    pub thread_names: Vec<(u64, String)>,
    /// All complete spans: `(name, tid, ts_us, dur_us)`.
    pub spans: Vec<(String, u64, f64, f64)>,
}

impl ChromeTrace {
    /// Parses (and validates) Chrome trace-event JSON text.
    ///
    /// # Errors
    ///
    /// Returns the first schema violation, as [`validate_chrome_trace`].
    pub fn parse(text: &str) -> Result<Self, String> {
        validate_chrome_trace(text)?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .or_else(|| v.as_array())
            .ok_or("no traceEvents")?;
        let mut out = ChromeTrace::default();
        for e in events {
            let ph = e.get("ph").and_then(JsonValue::as_str).unwrap_or("");
            let tid = event_num(e, "tid").unwrap_or(0.0) as u64;
            let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
            match ph {
                "M" if name == "thread_name" => {
                    if let Some(t) = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(JsonValue::as_str)
                    {
                        out.thread_names.push((tid, t.to_owned()));
                    }
                }
                "X" => out.spans.push((
                    name.to_owned(),
                    tid,
                    event_num(e, "ts").unwrap_or(0.0),
                    event_num(e, "dur").unwrap_or(0.0),
                )),
                _ => {}
            }
        }
        Ok(out)
    }

    fn track_label(&self, tid: u64) -> String {
        self.thread_names
            .iter()
            .find(|(t, _)| *t == tid)
            .map_or_else(|| format!("tid-{tid}"), |(_, n)| n.clone())
    }

    /// Renders the top spans by total (inclusive) time as an ASCII table.
    #[must_use]
    pub fn render_top(&self, n: usize) -> String {
        let mut agg: Vec<(String, u64, f64, f64)> = Vec::new(); // name, count, total, max
        for (name, _, _, dur) in &self.spans {
            if let Some(a) = agg.iter_mut().find(|(k, _, _, _)| k == name) {
                a.1 += 1;
                a.2 += dur;
                a.3 = a.3.max(*dur);
            } else {
                agg.push((name.clone(), 1, *dur, *dur));
            }
        }
        agg.sort_by(|a, b| b.2.total_cmp(&a.2));
        let wall = self.wall_us().max(1e-9);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>7}\n",
            "span", "count", "total_ms", "max_ms", "%wall"
        ));
        for (name, count, total, max) in agg.iter().take(n) {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12.3} {:>12.3} {:>6.1}%\n",
                name,
                count,
                total / 1e3,
                max / 1e3,
                100.0 * total / wall
            ));
        }
        out
    }

    /// Wall-clock extent of the trace in microseconds.
    #[must_use]
    pub fn wall_us(&self) -> f64 {
        let start = self
            .spans
            .iter()
            .map(|&(_, _, ts, _)| ts)
            .fold(f64::INFINITY, f64::min);
        let end = self
            .spans
            .iter()
            .map(|&(_, _, ts, dur)| ts + dur)
            .fold(0.0, f64::max);
        if start.is_finite() && end > start {
            end - start
        } else {
            0.0
        }
    }

    /// Renders one ASCII density row per track: each column covers an
    /// equal slice of wall time, shaded by how busy the track was
    /// (` `, `.`, `:`, `*`, `#` for 0..100%). Makes load imbalance
    /// between workers visible at a glance.
    #[must_use]
    pub fn render_timeline(&self, width: usize) -> String {
        let width = width.max(10);
        let wall = self.wall_us();
        if wall <= 0.0 {
            return "(empty trace)\n".to_owned();
        }
        let t0 = self
            .spans
            .iter()
            .map(|&(_, _, ts, _)| ts)
            .fold(f64::INFINITY, f64::min);
        let mut tids: Vec<u64> = self.spans.iter().map(|&(_, tid, _, _)| tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {:.3} ms across {} track(s), {} span(s)\n",
            wall / 1e3,
            tids.len(),
            self.spans.len()
        ));
        let col_us = wall / width as f64;
        for tid in tids {
            let mut busy = vec![0.0f64; width];
            // Only leaf-level busyness matters for shading; inclusive
            // spans overlap, so clamp each column's fill to its width.
            for &(_, _, ts, dur) in self.spans.iter().filter(|&&(_, t, _, _)| t == tid) {
                let (s, e) = (ts - t0, ts - t0 + dur);
                let first = ((s / col_us) as usize).min(width - 1);
                let last = ((e / col_us) as usize).min(width - 1);
                for (c, b) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = c as f64 * col_us;
                    let hi = lo + col_us;
                    *b += (e.min(hi) - s.max(lo)).max(0.0);
                }
            }
            let row: String = busy
                .iter()
                .map(|&b| {
                    let f = (b / col_us).min(1.0);
                    match (f * 4.0).ceil() as u32 {
                        0 => ' ',
                        1 => '.',
                        2 => ':',
                        3 => '*',
                        _ => '#',
                    }
                })
                .collect();
            out.push_str(&format!("{:>12} |{row}|\n", self.track_label(tid)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The recorder is process-global; tests that enable it must not
    // interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: StdMutex<()> = StdMutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _g = lock();
        disable();
        reset();
        {
            let _s = span("flighttest.disabled");
        }
        counter("flighttest.disabled.counter", 1.0);
        assert!(!span_events()
            .iter()
            .any(|s| s.name.starts_with("flighttest.disabled")));
        assert!(counter_events().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_parent_ids() {
        let _g = lock();
        reset();
        enable();
        {
            let _outer = span("flighttest.outer");
            {
                let _inner = span_with_args("flighttest.inner", &[("job", 7.0)]);
            }
        }
        disable();
        let spans = span_events();
        let outer = spans
            .iter()
            .find(|s| s.name == "flighttest.outer")
            .expect("outer recorded");
        let inner = spans
            .iter()
            .find(|s| s.name == "flighttest.inner")
            .expect("inner recorded");
        assert_eq!(inner.parent, outer.id, "inner's parent is outer");
        assert_eq!(outer.parent, 0, "outer is a root");
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(inner.args, vec![("job".to_owned(), 7.0)]);
        // Both ran on this (named) test thread's track.
        assert_eq!(inner.track, outer.track);
    }

    #[test]
    fn worker_tracks_attribute_spans_per_thread() {
        let _g = lock();
        reset();
        enable();
        std::thread::scope(|scope| {
            for w in 0..2 {
                scope.spawn(move || {
                    set_thread_track(&format!("flightworker-{w}"));
                    let _s = span("flighttest.job");
                });
            }
        });
        disable();
        let spans = span_events();
        for w in 0..2 {
            assert!(
                spans
                    .iter()
                    .any(|s| s.name == "flighttest.job" && s.track == format!("flightworker-{w}")),
                "missing span on worker {w}: {spans:?}"
            );
        }
    }

    #[test]
    fn chrome_export_validates_and_parses_back() {
        let _g = lock();
        reset();
        enable();
        {
            let _outer = span("flighttest.export");
            let _inner = span("flighttest.export.child");
            counter("flighttest.beat", 42.0);
        }
        disable();
        let text = chrome_trace().to_json_pretty();
        let stats = validate_chrome_trace(&text).expect("export passes its own validator");
        assert!(stats.spans >= 2, "{stats:?}");
        assert!(stats.counters >= 1, "{stats:?}");
        assert!(stats.max_depth >= 2, "{stats:?}");
        let parsed = ChromeTrace::parse(&text).expect("parses back");
        assert!(parsed.spans.iter().any(|(n, ..)| n == "flighttest.export"));
        let top = parsed.render_top(10);
        assert!(top.contains("flighttest.export"), "{top}");
        let timeline = parsed.render_timeline(40);
        assert!(timeline.contains("track(s)"), "{timeline}");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let bad_order = r#"{"traceEvents": [
            {"ph":"X","name":"a","pid":1,"tid":0,"ts":100,"dur":5},
            {"ph":"X","name":"b","pid":1,"tid":0,"ts":50,"dur":5}
        ]}"#;
        assert!(validate_chrome_trace(bad_order)
            .unwrap_err()
            .contains("backwards"));

        let escapes = r#"{"traceEvents": [
            {"ph":"X","name":"parent","pid":1,"tid":0,"ts":0,"dur":10},
            {"ph":"X","name":"child","pid":1,"tid":0,"ts":5,"dur":50}
        ]}"#;
        assert!(validate_chrome_trace(escapes)
            .unwrap_err()
            .contains("escapes"));

        let unbalanced = r#"{"traceEvents": [
            {"ph":"B","name":"open","pid":1,"tid":3,"ts":0}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unbalanced"));

        let mismatched = r#"{"traceEvents": [
            {"ph":"B","name":"a","pid":1,"tid":0,"ts":0},
            {"ph":"E","name":"b","pid":1,"tid":0,"ts":1}
        ]}"#;
        assert!(validate_chrome_trace(mismatched)
            .unwrap_err()
            .contains("does not match"));

        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());

        let balanced = r#"{"traceEvents": [
            {"ph":"B","name":"a","pid":1,"tid":0,"ts":0},
            {"ph":"E","name":"a","pid":1,"tid":0,"ts":1}
        ]}"#;
        validate_chrome_trace(balanced).expect("balanced B/E pass");
    }

    #[test]
    fn flush_writes_once_then_goes_quiet() {
        let _g = lock();
        reset();
        let dir = std::env::temp_dir().join(format!("kobserve_flight_{}", std::process::id()));
        let path = dir.join("trace.json");
        set_output(&path);
        {
            let _s = span("flighttest.flush");
        }
        disable();
        let written = flush().expect("flush").expect("path pending");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).expect("trace written");
        validate_chrome_trace(&text).expect("written trace validates");
        assert!(flush().expect("second flush").is_none(), "flush consumed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
