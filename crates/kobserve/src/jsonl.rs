//! Shared JSONL (JSON-lines) plumbing.
//!
//! Three consumers keep append-only `.jsonl` trajectories: the bench
//! history behind `perf summary`'s trend gate, [`RunReport`] trajectory
//! files, and the `dash` report reader. Before this module each carried
//! its own copy of the same open-append-writeln / read-filter loop; they
//! now share one implementation with one set of semantics:
//!
//! * [`append_line`] creates parent directories and the file as needed
//!   and appends exactly one compact JSON line.
//! * [`read_lines`] treats a missing file as empty and **skips** blank
//!   or malformed lines rather than failing — a trajectory file is an
//!   append-only log that may carry a torn final line after a crash,
//!   and one bad line must not invalidate the history before it.
//!
//! [`RunReport`]: crate::RunReport

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::json::{self, JsonValue};

/// Appends `value` as one compact JSON line to `path`, creating the
/// file and any parent directories as needed.
///
/// # Errors
///
/// Returns the underlying I/O error on filesystem failure.
pub fn append_line(path: &Path, value: &JsonValue) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", value.to_json())
}

/// Reads every parseable JSON line from `path`. A missing file yields an
/// empty vector; blank and malformed lines are skipped.
///
/// # Errors
///
/// Returns the underlying I/O error on filesystem failure other than
/// the file not existing.
pub fn read_lines(path: &Path) -> io::Result<Vec<JsonValue>> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| json::parse(line).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oslay-jsonl-{}-{name}", std::process::id()));
        p
    }

    /// Tiny deterministic xorshift generator for the property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Random JSON tree with only round-trip-exact numbers (small
    /// integers and dyadic fractions survive f64 formatting bit-exactly).
    fn random_value(rng: &mut Rng, depth: u32) -> JsonValue {
        let pick = if depth == 0 {
            rng.below(4)
        } else {
            rng.below(6)
        };
        match pick {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(rng.below(2) == 0),
            2 => {
                let n = rng.below(2_000_000) as f64 - 1_000_000.0;
                let frac = match rng.below(3) {
                    0 => 0.0,
                    1 => 0.5,
                    _ => 0.25,
                };
                JsonValue::Num(n + frac)
            }
            3 => {
                let len = rng.below(12);
                let s: String = (0..len)
                    .map(|_| {
                        // Mix in characters the escaper must handle.
                        match rng.below(8) {
                            0 => '"',
                            1 => '\\',
                            2 => '\n',
                            3 => '\t',
                            _ => char::from(b'a' + (rng.below(26) as u8)),
                        }
                    })
                    .collect();
                JsonValue::Str(s)
            }
            4 => JsonValue::Array(
                (0..rng.below(4))
                    .map(|_| random_value(rng, depth - 1))
                    .collect(),
            ),
            _ => JsonValue::object(
                (0..rng.below(4))
                    .map(|i| (format!("k{i}"), random_value(rng, depth - 1)))
                    .collect::<Vec<_>>(),
            ),
        }
    }

    #[test]
    fn round_trip_property() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
        let values: Vec<JsonValue> = (0..64).map(|_| random_value(&mut rng, 3)).collect();
        for v in &values {
            append_line(&path, v).expect("append");
        }
        let back = read_lines(&path).expect("read");
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_json(), b.to_json(), "line round-trips bit-exactly");
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(read_lines(&path).expect("missing is empty").is_empty());
    }

    #[test]
    fn malformed_and_blank_lines_are_skipped() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        append_line(&path, &JsonValue::Num(1.0)).unwrap();
        append_line(&path, &JsonValue::Num(2.0)).unwrap();
        // Simulate a torn write: a truncated line and a blank line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("\n{\"torn\": tru\n");
        std::fs::write(&path, text).unwrap();
        let back = read_lines(&path).expect("read");
        assert_eq!(back.len(), 2, "good prefix survives the torn tail");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn creates_parent_directories() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("oslay-jsonl-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("log.jsonl");
        append_line(&path, &JsonValue::Bool(true)).expect("append creates dirs");
        assert_eq!(read_lines(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
