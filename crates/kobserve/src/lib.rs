//! Zero-dependency observability for the `oslay` reproduction.
//!
//! The paper's methodology is measurement-first: a hardware performance
//! monitor drives every layout decision. This crate gives the software
//! reproduction the same discipline, with four pieces:
//!
//! * **Phase spans** ([`span`], [`Recorder`]) — scoped wall-clock timers
//!   so a `Study` run can report how long it spent in synthesis, trace
//!   generation, profiling, each layout pass, and simulation.
//! * **Metric registry** ([`MetricRegistry`], [`Probe`]) — named counters,
//!   gauges, and log2-bucketed histograms. Hot paths (the cache simulator,
//!   the trace engine) accept an optional [`Probe`] so instrumentation is
//!   strictly zero-cost when disabled.
//! * **Layout audit trail** ([`PlacementAudit`]) — per-block placement
//!   provenance recorded by the layout passes: which area a block landed
//!   in, which seed and `(ExecThresh, BranchThresh)` rung adopted it,
//!   which sequence it joined.
//! * **JSON run reports** ([`RunReport`], [`json`]) — hand-rolled JSON
//!   (serializer *and* parser, no serde) for machine-readable results
//!   written beside the human-readable `.txt` figures, plus
//!   [`compare`] for regression checking between runs.
//! * **Flight recorder** ([`flight`]) — an opt-in structured tracer:
//!   hierarchical spans with per-thread/worker attribution, heartbeat
//!   counters, and a Chrome trace-event / Perfetto exporter. When
//!   enabled, every [`span`] also records a flight span; when disabled
//!   it costs one atomic load.
//! * **Timeline** ([`timeline`]) — the flight recorder's simulated-time
//!   twin: windowed miss/occupancy telemetry frames sampled every `2^k`
//!   simulated events, change-point phase segmentation, and the
//!   `oslay.telemetry.v1` document behind `--telemetry-out` and the
//!   `dash` viewer. Shared JSONL plumbing lives in [`jsonl`].
//!
//! Metric names are namespaced by pipeline stage: `trace.*`, `cache.*`,
//! `layout.*`, `study.*` (see `DESIGN.md` at the repository root).
//!
//! This crate depends on nothing outside `std`, so every other workspace
//! crate can depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
pub mod flight;
pub mod json;
pub mod jsonl;
mod metrics;
mod report;
mod span;
pub mod timeline;

pub use audit::{PlacementAudit, PlacementRecord};
pub use json::{JsonError, JsonValue};
pub use metrics::{
    AttrClass, AttributionProbe, Histogram, HistogramSummary, MetricRegistry, NoopProbe, Probe,
};
pub use report::{compare, Regression, ReportError, RunReport, SpanEntry};
pub use span::{global_recorder, span, Recorder, SpanGuard};
