//! A small hand-rolled JSON value type with a serializer and a parser.
//!
//! The workspace must build offline, so run reports cannot use serde.
//! This module covers exactly what the reports need: the six JSON value
//! kinds, deterministic member order (objects are ordered vectors, not
//! maps), full string escaping, and a strict recursive-descent parser so
//! reports can be read back for [`crate::compare`].

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order so serialized reports are
/// byte-stable run to run.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Non-finite floats serialize as `null` (JSON has
    /// no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn object(members: impl IntoIterator<Item = (String, JsonValue)>) -> Self {
        JsonValue::Object(members.into_iter().collect())
    }

    /// Looks up a member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes to an indented JSON string (2-space indent).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a number the shortest way that round-trips: integers without a
/// fraction, everything else via Rust's shortest-representation `{}`.
fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error, with the byte offset where parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed construct.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 (it's a &str) and we only stopped
                // on ASCII sentinels, so this slice is valid UTF-8 too.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("invalid unicode escape")),
                }
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Num(0.0),
            JsonValue::Num(-17.0),
            JsonValue::Num(3.25),
            JsonValue::Num(1e-9),
            JsonValue::Str("plain".into()),
        ] {
            assert_eq!(parse(&v.to_json()).unwrap(), v);
        }
    }

    #[test]
    fn round_trip_escaped_strings() {
        for s in [
            "quote \" backslash \\ slash /",
            "newline\n tab\t return\r",
            "control \u{01}\u{1f} chars",
            "unicode: é 中文 🚀",
            "",
        ] {
            let v = JsonValue::Str(s.to_owned());
            assert_eq!(parse(&v.to_json()).unwrap(), v, "string {s:?}");
        }
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é🚀""#).unwrap(), JsonValue::Str("é🚀".into()));
    }

    #[test]
    fn round_trip_nested_structure() {
        let v = JsonValue::object([
            ("name".to_owned(), JsonValue::Str("run".into())),
            (
                "metrics".to_owned(),
                JsonValue::Array(vec![
                    JsonValue::Num(1.0),
                    JsonValue::Null,
                    JsonValue::object([("k".to_owned(), JsonValue::Bool(true))]),
                ]),
            ),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn object_preserves_member_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        match &v {
            JsonValue::Object(m) => {
                let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\": }",
            "\"bad \\x escape\"",
            "\"lone \\ud800 surrogate\"",
        ] {
            assert!(parse(bad).is_err(), "input {bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 4, "s": "x", "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
