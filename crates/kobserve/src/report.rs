//! Machine-readable run reports and the regression checker.
//!
//! A [`RunReport`] bundles one experiment run: phase spans, the metric
//! registry's counters/gauges/histograms, and any number of named
//! *sections* of numeric fields (miss rates per optimization level,
//! speedups per penalty, ...). It serializes to JSON beside the
//! human-readable `.txt` outputs, appends to JSONL trajectories, parses
//! back, and feeds [`compare`] so a later run can be checked against a
//! stored baseline.

use std::fmt;
use std::fs;
use std::path::Path;

use crate::json::{self, JsonValue};
use crate::metrics::{HistogramSummary, MetricRegistry};
use crate::span::Recorder;

/// One aggregated phase span in a report.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEntry {
    /// Span name.
    pub name: String,
    /// Total seconds across all scopes with this name.
    pub secs: f64,
    /// Number of scopes.
    pub count: u64,
}

/// A named group of numeric fields, e.g. one per optimization level.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Section {
    name: String,
    fields: Vec<(String, f64)>,
}

/// A serializable account of one experiment run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    name: String,
    spans: Vec<SpanEntry>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistogramSummary)>,
    sections: Vec<Section>,
}

impl RunReport {
    /// Creates an empty report for the named run.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// The run name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Copies all span totals from a recorder into the report, sorted by
    /// name. The recorder keeps first-recorded order, which depends on
    /// thread interleaving under sharded execution; sorting makes the
    /// report layout identical at any worker count.
    pub fn add_spans(&mut self, recorder: &Recorder) {
        let mut totals = recorder.totals();
        totals.sort_by(|a, b| a.name.cmp(&b.name));
        for t in totals {
            self.spans.push(SpanEntry {
                name: t.name,
                secs: t.total.as_secs_f64(),
                count: t.count,
            });
        }
    }

    /// Copies every counter, gauge, and histogram from a registry.
    pub fn add_metrics(&mut self, registry: &MetricRegistry) {
        self.counters.extend(registry.counters());
        self.gauges.extend(registry.gauges());
        self.histograms.extend(registry.histograms());
    }

    /// Appends a section of `(field, value)` pairs.
    pub fn add_section<S: Into<String>>(
        &mut self,
        name: &str,
        fields: impl IntoIterator<Item = (S, f64)>,
    ) {
        self.sections.push(Section {
            name: name.to_owned(),
            fields: fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        });
    }

    /// The recorded spans.
    #[must_use]
    pub fn spans(&self) -> &[SpanEntry] {
        &self.spans
    }

    /// The recorded counters.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The recorded gauges.
    #[must_use]
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// The recorded histogram summaries.
    #[must_use]
    pub fn histograms(&self) -> &[(String, HistogramSummary)] {
        &self.histograms
    }

    /// Total number of named metrics (counters + gauges + histograms).
    #[must_use]
    pub fn metric_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Section names in insertion order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// A field of a named section.
    #[must_use]
    pub fn section_field(&self, section: &str, field: &str) -> Option<f64> {
        self.sections
            .iter()
            .find(|s| s.name == section)
            .and_then(|s| s.fields.iter().find(|(k, _)| k == field))
            .map(|(_, v)| *v)
    }

    /// Serializes the report to a JSON value.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name".to_owned(), JsonValue::Str(self.name.clone())),
            (
                "spans".to_owned(),
                JsonValue::Array(
                    self.spans
                        .iter()
                        .map(|s| {
                            JsonValue::object([
                                ("name".to_owned(), JsonValue::Str(s.name.clone())),
                                ("secs".to_owned(), JsonValue::Num(s.secs)),
                                ("count".to_owned(), JsonValue::Num(s.count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".to_owned(),
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                JsonValue::object([
                                    ("count".to_owned(), JsonValue::Num(h.count as f64)),
                                    ("sum".to_owned(), JsonValue::Num(h.sum as f64)),
                                    ("max".to_owned(), JsonValue::Num(h.max as f64)),
                                    ("p50".to_owned(), JsonValue::Num(h.p50 as f64)),
                                    ("p95".to_owned(), JsonValue::Num(h.p95 as f64)),
                                    ("p99".to_owned(), JsonValue::Num(h.p99 as f64)),
                                    (
                                        "buckets".to_owned(),
                                        JsonValue::Array(
                                            h.buckets
                                                .iter()
                                                .map(|&(lo, c)| {
                                                    JsonValue::Array(vec![
                                                        JsonValue::Num(lo as f64),
                                                        JsonValue::Num(c as f64),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "sections".to_owned(),
                JsonValue::Object(
                    self.sections
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                JsonValue::Object(
                                    s.fields
                                        .iter()
                                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the report to a JSON value with every wall-clock field
    /// removed, keeping all deterministic *content*:
    ///
    /// * span entries keep their name and count but drop `secs` (the
    ///   only per-span field that varies run to run);
    /// * counters, gauges, histograms, and section values are kept in
    ///   full — a simulation-content difference between two runs *must*
    ///   change these bytes;
    /// * sections whose name starts with `perf.` are dropped entirely:
    ///   that namespace is reserved for self-measurement (allocation
    ///   counts, machine-local timing) that legitimately differs between
    ///   an archived replay and a live run.
    ///
    /// Two runs of a deterministic experiment produce byte-identical
    /// output from this serialization, so it is what reproducibility
    /// gates diff — `ci.sh` compares archived-replay reports against
    /// live ones with it, at several worker counts — and any metric or
    /// section divergence shows up as a content diff, not a silent pass.
    #[must_use]
    pub fn to_json_deterministic(&self) -> JsonValue {
        let mut v = self.to_json();
        let JsonValue::Object(members) = &mut v else {
            unreachable!("to_json always builds an object");
        };
        for (key, val) in members.iter_mut() {
            match key.as_str() {
                "spans" => {
                    *val = JsonValue::Array(
                        self.spans
                            .iter()
                            .map(|s| {
                                JsonValue::object([
                                    ("name".to_owned(), JsonValue::Str(s.name.clone())),
                                    ("count".to_owned(), JsonValue::Num(s.count as f64)),
                                ])
                            })
                            .collect(),
                    );
                }
                "sections" => {
                    if let JsonValue::Object(sections) = val {
                        sections.retain(|(name, _)| !name.starts_with("perf."));
                    }
                }
                _ => {}
            }
        }
        v
    }

    /// Parses a report back from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError`] if the text is not valid JSON or lacks the
    /// report structure.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let v = json::parse(text)?;
        let bad = |what: &str| ReportError::Shape(what.to_owned());
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let mut report = RunReport::new(&name);

        for s in v
            .get("spans")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing spans"))?
        {
            report.spans.push(SpanEntry {
                name: s
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("span without name"))?
                    .to_owned(),
                secs: s
                    .get("secs")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| bad("span without secs"))?,
                count: s
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("span without count"))?,
            });
        }

        let object_members = |key: &str| -> Result<Vec<(String, JsonValue)>, ReportError> {
            match v.get(key) {
                Some(JsonValue::Object(members)) => Ok(members.clone()),
                _ => Err(bad(&format!("missing {key}"))),
            }
        };
        for (k, val) in object_members("counters")? {
            let n = val.as_u64().ok_or_else(|| bad("non-integer counter"))?;
            report.counters.push((k, n));
        }
        for (k, val) in object_members("gauges")? {
            let n = val.as_f64().ok_or_else(|| bad("non-numeric gauge"))?;
            report.gauges.push((k, n));
        }
        for (k, val) in object_members("histograms")? {
            let mut summary = HistogramSummary {
                count: val
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("histogram without count"))?,
                sum: val
                    .get("sum")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("histogram without sum"))?,
                max: val
                    .get("max")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("histogram without max"))?,
                // Percentiles were added after the first reports were
                // written; default to 0 so old files still parse.
                p50: val.get("p50").and_then(JsonValue::as_u64).unwrap_or(0),
                p95: val.get("p95").and_then(JsonValue::as_u64).unwrap_or(0),
                p99: val.get("p99").and_then(JsonValue::as_u64).unwrap_or(0),
                buckets: Vec::new(),
            };
            for pair in val
                .get("buckets")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| bad("histogram without buckets"))?
            {
                let pair = pair.as_array().ok_or_else(|| bad("bucket not a pair"))?;
                if pair.len() != 2 {
                    return Err(bad("bucket not a pair"));
                }
                let lo = pair[0].as_u64().ok_or_else(|| bad("bucket low"))?;
                let c = pair[1].as_u64().ok_or_else(|| bad("bucket count"))?;
                summary.buckets.push((lo, c));
            }
            report.histograms.push((k, summary));
        }
        for (name, val) in object_members("sections")? {
            let JsonValue::Object(members) = val else {
                return Err(bad("section not an object"));
            };
            let mut fields = Vec::with_capacity(members.len());
            for (k, fv) in members {
                fields.push((k, fv.as_f64().ok_or_else(|| bad("non-numeric field"))?));
            }
            report.sections.push(Section { name, fields });
        }
        Ok(report)
    }

    /// Writes the report as pretty-printed JSON, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::Io`] on filesystem failure.
    pub fn write(&self, path: &Path) -> Result<(), ReportError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_json().to_json_pretty())?;
        Ok(())
    }

    /// Appends the report as one compact JSON line to a `.jsonl`
    /// trajectory file, creating it (and parent directories) as needed.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::Io`] on filesystem failure.
    pub fn append_jsonl(&self, path: &Path) -> Result<(), ReportError> {
        crate::jsonl::append_line(path, &self.to_json())?;
        Ok(())
    }
}

/// A report could not be written, read, or parsed.
#[derive(Debug)]
pub enum ReportError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The text was not valid JSON.
    Json(json::JsonError),
    /// The JSON was valid but not shaped like a report.
    Shape(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "report I/O error: {e}"),
            ReportError::Json(e) => write!(f, "report JSON error: {e}"),
            ReportError::Shape(s) => write!(f, "malformed report: {s}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<std::io::Error> for ReportError {
    fn from(e: std::io::Error) -> Self {
        ReportError::Io(e)
    }
}

impl From<json::JsonError> for ReportError {
    fn from(e: json::JsonError) -> Self {
        ReportError::Json(e)
    }
}

/// One field that regressed between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `section.field` or `gauge.<name>` path of the regressed value.
    pub path: String,
    /// Value in the baseline run.
    pub baseline: f64,
    /// Value in the current run.
    pub current: f64,
}

impl Regression {
    /// Relative increase of `current` over `baseline`.
    #[must_use]
    pub fn relative_increase(&self) -> f64 {
        if self.baseline == 0.0 {
            f64::INFINITY
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} (+{:.2}%)",
            self.path,
            self.baseline,
            self.current,
            self.relative_increase() * 100.0
        )
    }
}

/// Compares two runs, flagging every shared numeric field whose current
/// value exceeds the baseline by more than `tolerance` (relative).
///
/// Fields are *lower-is-better* (miss rates, times): a regression is
/// `current > baseline * (1 + tolerance)`. Section fields and gauges are
/// compared; fields present in only one report are ignored (workloads
/// may come and go between runs).
#[must_use]
pub fn compare(baseline: &RunReport, current: &RunReport, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for section in &baseline.sections {
        for (field, base) in &section.fields {
            let Some(cur) = current.section_field(&section.name, field) else {
                continue;
            };
            if cur > base * (1.0 + tolerance) + f64::EPSILON {
                out.push(Regression {
                    path: format!("{}.{}", section.name, field),
                    baseline: *base,
                    current: cur,
                });
            }
        }
    }
    for (name, base) in &baseline.gauges {
        let Some(&(_, cur)) = current.gauges.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if cur > base * (1.0 + tolerance) + f64::EPSILON {
            out.push(Regression {
                path: format!("gauge.{name}"),
                baseline: *base,
                current: cur,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Probe;

    fn report_with(miss_rate: f64) -> RunReport {
        let mut r = RunReport::new("run");
        r.add_section("fig12.cc1", [("Base", 0.2), ("OptA", miss_rate)]);
        r
    }

    #[test]
    fn compare_flags_regression_above_tolerance() {
        let baseline = report_with(0.050);
        let current = report_with(0.060); // +20%
        let regs = compare(&baseline, &current, 0.05);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "fig12.cc1.OptA");
        assert!((regs[0].relative_increase() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn compare_accepts_change_below_tolerance() {
        let baseline = report_with(0.050);
        let current = report_with(0.051); // +2%
        assert!(compare(&baseline, &current, 0.05).is_empty());
        // Improvements never flag.
        let better = report_with(0.040);
        assert!(compare(&baseline, &better, 0.0).is_empty());
    }

    #[test]
    fn compare_ignores_fields_missing_from_either_side() {
        let mut baseline = report_with(0.05);
        baseline.add_section("only.base", [("x", 1.0)]);
        let current = report_with(0.05);
        assert!(compare(&baseline, &current, 0.0).is_empty());
    }

    #[test]
    fn compare_covers_gauges() {
        let mut baseline = RunReport::new("b");
        baseline.gauges.push(("cache.miss_rate".into(), 0.10));
        let mut current = RunReport::new("c");
        current.gauges.push(("cache.miss_rate".into(), 0.13));
        let regs = compare(&baseline, &current, 0.1);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "gauge.cache.miss_rate");
    }

    #[test]
    fn full_report_round_trips_through_json() {
        let recorder = Recorder::new();
        recorder.record("study.trace", std::time::Duration::from_millis(120));
        recorder.record("study.trace", std::time::Duration::from_millis(30));
        recorder.record("layout.opt_s", std::time::Duration::from_millis(5));
        let registry = MetricRegistry::new();
        registry.counter_add("cache.evictions", 42);
        registry.gauge_set("cache.miss_rate", 0.0525);
        registry.histogram_record("trace.invocation_blocks", 100);
        registry.histogram_record("trace.invocation_blocks", 3);

        let mut report = RunReport::new("all_experiments");
        report.add_spans(&recorder);
        report.add_metrics(&registry);
        report.add_section("fig12.shell", [("Base", 0.071), ("OptS", 0.021)]);

        let text = report.to_json().to_json_pretty();
        let parsed = RunReport::from_json(&text).expect("round trip");
        assert_eq!(parsed, report);
        assert_eq!(parsed.metric_count(), 3);
        assert_eq!(parsed.section_field("fig12.shell", "OptS"), Some(0.021));
        // Spans are name-sorted regardless of recording order.
        assert_eq!(parsed.spans()[0].name, "layout.opt_s");
        let trace_span = &parsed.spans()[1];
        assert_eq!(trace_span.name, "study.trace");
        assert_eq!(trace_span.count, 2);
        assert!((trace_span.secs - 0.150).abs() < 1e-9);
    }

    #[test]
    fn write_and_append_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "kobserve_test_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let report = report_with(0.05);
        let json_path = dir.join("run.json");
        report.write(&json_path).unwrap();
        let back = RunReport::from_json(&fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(back, report);

        let jsonl_path = dir.join("trajectory.jsonl");
        report.append_jsonl(&jsonl_path).unwrap();
        report.append_jsonl(&jsonl_path).unwrap();
        let lines = fs::read_to_string(&jsonl_path).unwrap();
        assert_eq!(lines.lines().count(), 2);
        for line in lines.lines() {
            assert_eq!(RunReport::from_json(line).unwrap(), report);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_json_drops_secs_but_keeps_counts() {
        let recorder = Recorder::new();
        recorder.record("study.trace", std::time::Duration::from_millis(7));
        let mut report = RunReport::new("r");
        report.add_spans(&recorder);
        report.add_section("fig12.shell", [("Base", 0.071)]);
        let text = report.to_json_deterministic().to_json_pretty();
        assert!(!text.contains("secs"));
        assert!(text.contains("\"count\""));
        assert!(text.contains("study.trace"));
        assert!(text.contains("fig12.shell"));

        // Identical content with different timings serializes identically.
        let recorder2 = Recorder::new();
        recorder2.record("study.trace", std::time::Duration::from_millis(900));
        let mut report2 = RunReport::new("r");
        report2.add_spans(&recorder2);
        report2.add_section("fig12.shell", [("Base", 0.071)]);
        assert_eq!(text, report2.to_json_deterministic().to_json_pretty());
    }

    #[test]
    fn deterministic_json_detects_content_differences() {
        // Archived-vs-live gates diff this serialization, so a metric or
        // section *value* change must change the bytes.
        let make = |evictions: u64, base: f64| {
            let registry = MetricRegistry::new();
            registry.counter_add("cache.evictions", evictions);
            registry.gauge_set("cache.miss_rate", 0.05);
            registry.histogram_record("trace.invocation_blocks", 17);
            let mut r = RunReport::new("r");
            r.add_metrics(&registry);
            r.add_section("fig12.shell", [("Base", base)]);
            r
        };
        let a = make(42, 0.071).to_json_deterministic().to_json_pretty();
        assert_eq!(a, make(42, 0.071).to_json_deterministic().to_json_pretty());
        assert_ne!(
            a,
            make(43, 0.071).to_json_deterministic().to_json_pretty(),
            "counter value difference must be visible"
        );
        assert_ne!(
            a,
            make(42, 0.072).to_json_deterministic().to_json_pretty(),
            "section value difference must be visible"
        );
        // Full metric content survives, not just names.
        assert!(a.contains("\"cache.evictions\": 42"), "{a}");
        assert!(a.contains("\"cache.miss_rate\": 0.05"), "{a}");
        assert!(a.contains("trace.invocation_blocks"), "{a}");
    }

    #[test]
    fn deterministic_json_excludes_perf_sections() {
        let mut r = report_with(0.05);
        r.add_section("perf.alloc", [("alloc_calls", 123.0)]);
        let full = r.to_json().to_json_pretty();
        assert!(full.contains("perf.alloc"), "full JSON keeps perf.alloc");
        let det = r.to_json_deterministic().to_json_pretty();
        assert!(!det.contains("perf.alloc"), "{det}");
        assert!(det.contains("fig12.cc1"), "other sections survive");
    }

    #[test]
    fn from_json_rejects_non_reports() {
        assert!(RunReport::from_json("[]").is_err());
        assert!(RunReport::from_json("{\"name\": \"x\"}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
