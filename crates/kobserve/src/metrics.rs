//! Named counters, gauges, and log2-bucketed histograms, plus the
//! [`Probe`] trait hot paths use to report them.
//!
//! The cache simulator and the trace engine accept an optional
//! `&dyn Probe`; passing `None` keeps instrumentation strictly off the
//! hot path. [`MetricRegistry`] is the collecting implementation;
//! [`NoopProbe`] exists for tests and for measuring probe overhead.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts the value `0`; bucket `i >= 1` counts values whose
/// bit length is `i`, i.e. the half-open range `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `1 + floor(log2 v)`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_low(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(bucket_low, count)` pairs, low to high.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_low(i), c))
            .collect()
    }

    /// Estimated value at quantile `q` (clamped to `0..=1`), or 0 if the
    /// histogram is empty.
    ///
    /// The histogram stores only power-of-two buckets, so the estimate
    /// interpolates linearly inside the bucket holding the `q`-th sample
    /// and is clamped to the observed maximum. Exact for bucket 0 (the
    /// value 0) and for the largest sample (`q = 1`).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == 0 {
                    return 0;
                }
                let lo = Self::bucket_low(i);
                let width = lo; // bucket i spans [lo, 2*lo)
                let within = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + within * width as f64;
                return (est as u64).clamp(lo, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Merges another histogram's samples into this one. Bucket counts
    /// add, so merging per-shard histograms equals recording every sample
    /// into one histogram (order never matters).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Condenses the histogram into the summary used by run reports.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// The report-friendly condensed form of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median sample (see [`Histogram::quantile`]).
    pub p50: u64,
    /// Estimated 95th-percentile sample.
    pub p95: u64,
    /// Estimated 99th-percentile sample.
    pub p99: u64,
    /// Occupied `(bucket_low, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

/// Sink for metrics emitted by instrumented code.
///
/// Every method has a no-op default, so implementations override only
/// what they collect and probe-accepting code can call unconditionally.
pub trait Probe {
    /// Adds `delta` to the named counter.
    fn counter_add(&self, _name: &str, _delta: u64) {}

    /// Sets the named gauge to `value`.
    fn gauge_set(&self, _name: &str, _value: f64) {}

    /// Records one sample into the named histogram.
    fn histogram_record(&self, _name: &str, _value: u64) {}
}

/// Why a miss happened, in the classical three-way decomposition used by
/// the attribution engine: the line was never referenced before
/// (compulsory), a fully-associative cache of the same capacity would
/// also have missed (capacity), or only the set mapping caused the miss
/// (conflict — the component code layout can fix).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AttrClass {
    /// First-ever reference to the line.
    Compulsory,
    /// The line had fallen out of an LRU stack of the cache's capacity.
    Capacity,
    /// The line was still LRU-stack resident; only set mapping evicted it.
    Conflict,
}

impl AttrClass {
    /// All classes, in reporting order.
    pub const ALL: [AttrClass; 3] = [
        AttrClass::Compulsory,
        AttrClass::Capacity,
        AttrClass::Conflict,
    ];

    /// Dense index (`0..3`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            AttrClass::Compulsory => 0,
            AttrClass::Capacity => 1,
            AttrClass::Conflict => 2,
        }
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttrClass::Compulsory => "compulsory",
            AttrClass::Capacity => "capacity",
            AttrClass::Conflict => "conflict",
        }
    }

    /// Metric name in the `cache.attr.*` namespace.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            AttrClass::Compulsory => "cache.attr.compulsory",
            AttrClass::Capacity => "cache.attr.capacity",
            AttrClass::Conflict => "cache.attr.conflict",
        }
    }
}

/// Extension of [`Probe`] for fully-attributed miss events.
///
/// The attribution engine in the cache crate calls
/// [`AttributionProbe::miss_attributed`] once per miss — never on hits —
/// so, like the base trait, the extension is strictly zero-cost when no
/// probe is attached. The default implementation drops the event, so any
/// [`Probe`] can opt in without implementing it.
pub trait AttributionProbe: Probe {
    /// Reports one classified miss: which cache set it landed in, its
    /// [`AttrClass`], and whether the evicting line was identified (the
    /// evictor is only known for refetches of previously evicted lines).
    fn miss_attributed(&self, _set: u32, _class: AttrClass, _evictor_known: bool) {}
}

/// A probe that drops everything — for overhead measurements and as an
/// explicit "observability off" value.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

impl AttributionProbe for NoopProbe {}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe metric store; the collecting [`Probe`] implementation.
///
/// Names are sorted on readout, so reports are deterministic.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.lock()
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All histogram summaries, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        self.lock()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }

    /// Total number of distinct metric names of any kind.
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges overwrite (last write wins — callers
    /// merging shards must fold them in a fixed order for deterministic
    /// gauge values).
    pub fn merge_from(&self, other: &MetricRegistry) {
        let theirs = other.lock();
        let mut inner = self.lock();
        for (name, &value) in &theirs.counters {
            if let Some(mine) = inner.counters.get_mut(name) {
                *mine += value;
            } else {
                inner.counters.insert(name.clone(), value);
            }
        }
        for (name, &value) in &theirs.gauges {
            inner.gauges.insert(name.clone(), value);
        }
        for (name, hist) in &theirs.histograms {
            if let Some(mine) = inner.histograms.get_mut(name) {
                mine.merge(hist);
            } else {
                inner.histograms.insert(name.clone(), hist.clone());
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("metric registry poisoned")
    }
}

impl RegistryInner {
    /// Counter bump without the per-call `String`: `entry(key.to_owned())`
    /// allocates even when the counter exists, and probes sit on per-miss
    /// hot paths, so the name is only owned on first touch.
    fn bump(&mut self, name: &str, delta: u64) {
        if let Some(mine) = self.counters.get_mut(name) {
            *mine += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Histogram record with the same first-touch-only allocation.
    fn sample(&mut self, name: &str, value: u64) {
        if let Some(hist) = self.histograms.get_mut(name) {
            hist.record(value);
        } else {
            let mut hist = Histogram::default();
            hist.record(value);
            self.histograms.insert(name.to_owned(), hist);
        }
    }
}

impl Probe for MetricRegistry {
    fn counter_add(&self, name: &str, delta: u64) {
        self.lock().bump(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        if let Some(mine) = inner.gauges.get_mut(name) {
            *mine = value;
        } else {
            inner.gauges.insert(name.to_owned(), value);
        }
    }

    fn histogram_record(&self, name: &str, value: u64) {
        self.lock().sample(name, value);
    }
}

impl AttributionProbe for MetricRegistry {
    fn miss_attributed(&self, set: u32, class: AttrClass, evictor_known: bool) {
        let mut inner = self.lock();
        inner.bump(class.metric_name(), 1);
        if evictor_known {
            inner.bump("cache.attr.evictor_known", 1);
        }
        inner.sample("cache.attr.set", u64::from(set));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..64 {
            let lo = Histogram::bucket_low(i);
            assert_eq!(Histogram::bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(lo * 2 - 1),
                i,
                "high edge of bucket {i}"
            );
        }
    }

    #[test]
    fn histogram_aggregates() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.2).abs() < 1e-12);
        // 0 -> bucket 0; 1,1 -> bucket 1; 5 -> bucket 3 (low 4); 9 -> bucket 4 (low 8).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (4, 1), (8, 1)]);
    }

    #[test]
    fn registry_collects_all_three_kinds() {
        let reg = MetricRegistry::new();
        reg.counter_add("cache.miss", 3);
        reg.counter_add("cache.miss", 2);
        reg.gauge_set("cache.occupancy", 0.75);
        reg.histogram_record("trace.burst", 10);
        assert_eq!(reg.counter("cache.miss"), 5);
        assert_eq!(reg.gauge("cache.occupancy"), Some(0.75));
        assert_eq!(reg.histogram("trace.burst").unwrap().count(), 1);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn readouts_are_name_sorted() {
        let reg = MetricRegistry::new();
        reg.counter_add("z.last", 1);
        reg.counter_add("a.first", 1);
        let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn noop_probe_accepts_everything() {
        let p = NoopProbe;
        p.counter_add("x", 1);
        p.gauge_set("y", 2.0);
        p.histogram_record("z", 3);
    }

    #[test]
    fn quantiles_are_exact_at_the_edges() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.quantile(0.99), 0, "bucket 0 is exact");
        h.record(1000);
        assert_eq!(h.quantile(1.0), 1000, "max is exact");
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_bounded() {
        let mut h = Histogram::default();
        for v in [1, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
            h.record(v);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
        // The median of ten samples is the 5th (value 8, bucket [8, 16)).
        let p50 = h.quantile(0.5);
        assert!((8..16).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 89);
    }

    #[test]
    fn summary_carries_percentiles() {
        let mut h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.p50, h.quantile(0.50));
        assert_eq!(s.p95, h.quantile(0.95));
        assert_eq!(s.p99, h.quantile(0.99));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn registry_collects_attributed_misses() {
        let reg = MetricRegistry::new();
        reg.miss_attributed(3, AttrClass::Conflict, true);
        reg.miss_attributed(3, AttrClass::Conflict, false);
        reg.miss_attributed(7, AttrClass::Compulsory, false);
        assert_eq!(reg.counter("cache.attr.conflict"), 2);
        assert_eq!(reg.counter("cache.attr.compulsory"), 1);
        assert_eq!(reg.counter("cache.attr.capacity"), 0);
        assert_eq!(reg.counter("cache.attr.evictor_known"), 1);
        let sets = reg.histogram("cache.attr.set").unwrap();
        assert_eq!(sets.count(), 3);
        assert_eq!(sets.max(), 7);
    }

    #[test]
    fn attr_class_indices_are_dense() {
        for (i, class) in AttrClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert!(class.metric_name().ends_with(class.label()));
        }
    }

    #[test]
    fn histogram_merge_equals_recording_all_samples() {
        let (mut a, mut b, mut whole) = (
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        );
        for v in [0u64, 1, 7, 100] {
            a.record(v);
            whole.record(v);
        }
        for v in [3u64, 9000, 2] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn registry_merge_folds_shards_deterministically() {
        let total = MetricRegistry::new();
        let shard_a = MetricRegistry::new();
        let shard_b = MetricRegistry::new();
        shard_a.counter_add("cache.miss", 3);
        shard_a.gauge_set("trace.call_depth_hwm", 5.0);
        shard_a.histogram_record("trace.burst", 4);
        shard_b.counter_add("cache.miss", 4);
        shard_b.counter_add("cache.hit", 1);
        shard_b.gauge_set("trace.call_depth_hwm", 7.0);
        shard_b.histogram_record("trace.burst", 16);
        total.merge_from(&shard_a);
        total.merge_from(&shard_b);
        assert_eq!(total.counter("cache.miss"), 7);
        assert_eq!(total.counter("cache.hit"), 1);
        // Gauges: last merged shard wins, so merge order fixes the value.
        assert_eq!(total.gauge("trace.call_depth_hwm"), Some(7.0));
        let h = total.histogram("trace.burst").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 20);
    }

    #[test]
    fn registry_works_through_dyn_probe() {
        let reg = MetricRegistry::new();
        let p: &dyn Probe = &reg;
        p.counter_add("dyn.count", 7);
        assert_eq!(reg.counter("dyn.count"), 7);
    }
}
