//! Named counters, gauges, and log2-bucketed histograms, plus the
//! [`Probe`] trait hot paths use to report them.
//!
//! The cache simulator and the trace engine accept an optional
//! `&dyn Probe`; passing `None` keeps instrumentation strictly off the
//! hot path. [`MetricRegistry`] is the collecting implementation;
//! [`NoopProbe`] exists for tests and for measuring probe overhead.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts the value `0`; bucket `i >= 1` counts values whose
/// bit length is `i`, i.e. the half-open range `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `1 + floor(log2 v)`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_low(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(bucket_low, count)` pairs, low to high.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_low(i), c))
            .collect()
    }

    /// Condenses the histogram into the summary used by run reports.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self.nonzero_buckets(),
        }
    }
}

/// The report-friendly condensed form of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Occupied `(bucket_low, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

/// Sink for metrics emitted by instrumented code.
///
/// Every method has a no-op default, so implementations override only
/// what they collect and probe-accepting code can call unconditionally.
pub trait Probe {
    /// Adds `delta` to the named counter.
    fn counter_add(&self, _name: &str, _delta: u64) {}

    /// Sets the named gauge to `value`.
    fn gauge_set(&self, _name: &str, _value: f64) {}

    /// Records one sample into the named histogram.
    fn histogram_record(&self, _name: &str, _value: u64) {}
}

/// A probe that drops everything — for overhead measurements and as an
/// explicit "observability off" value.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe metric store; the collecting [`Probe`] implementation.
///
/// Names are sorted on readout, so reports are deterministic.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.lock()
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All histogram summaries, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        self.lock()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }

    /// Total number of distinct metric names of any kind.
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("metric registry poisoned")
    }
}

impl Probe for MetricRegistry {
    fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert(name.to_owned(), value);
    }

    fn histogram_record(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..64 {
            let lo = Histogram::bucket_low(i);
            assert_eq!(Histogram::bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(lo * 2 - 1),
                i,
                "high edge of bucket {i}"
            );
        }
    }

    #[test]
    fn histogram_aggregates() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.2).abs() < 1e-12);
        // 0 -> bucket 0; 1,1 -> bucket 1; 5 -> bucket 3 (low 4); 9 -> bucket 4 (low 8).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (4, 1), (8, 1)]);
    }

    #[test]
    fn registry_collects_all_three_kinds() {
        let reg = MetricRegistry::new();
        reg.counter_add("cache.miss", 3);
        reg.counter_add("cache.miss", 2);
        reg.gauge_set("cache.occupancy", 0.75);
        reg.histogram_record("trace.burst", 10);
        assert_eq!(reg.counter("cache.miss"), 5);
        assert_eq!(reg.gauge("cache.occupancy"), Some(0.75));
        assert_eq!(reg.histogram("trace.burst").unwrap().count(), 1);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn readouts_are_name_sorted() {
        let reg = MetricRegistry::new();
        reg.counter_add("z.last", 1);
        reg.counter_add("a.first", 1);
        let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn noop_probe_accepts_everything() {
        let p = NoopProbe;
        p.counter_add("x", 1);
        p.gauge_set("y", 2.0);
        p.histogram_record("z", 3);
    }

    #[test]
    fn registry_works_through_dyn_probe() {
        let reg = MetricRegistry::new();
        let p: &dyn Probe = &reg;
        p.counter_add("dyn.count", 7);
        assert_eq!(reg.counter("dyn.count"), 7);
    }
}
