//! Phase spans: scoped wall-clock timers aggregated by name.
//!
//! A [`Recorder`] accumulates `(name, total time, count)` triples; a
//! [`SpanGuard`] measures one scope and reports into its recorder on
//! drop. Pipeline stages name their spans hierarchically
//! (`study.trace`, `layout.opt_s`, ...) so a run report shows where the
//! wall-clock time of an experiment went — the software analogue of the
//! paper's performance-monitor time accounting.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One aggregated span: every completed scope with the same name folds
/// into the same entry.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanTotals {
    /// Span name (e.g. `study.trace`).
    pub name: String,
    /// Total time across all completed scopes with this name.
    pub total: Duration,
    /// Number of completed scopes with this name.
    pub count: u64,
}

/// Thread-safe collector of phase spans.
#[derive(Debug, Default)]
pub struct Recorder {
    totals: Mutex<Vec<SpanTotals>>,
}

impl Recorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a span that reports into this recorder when dropped.
    ///
    /// While the [`crate::flight`] recorder is enabled, the same scope
    /// also records a hierarchical flight span (with parent/child and
    /// per-thread attribution); when it is disabled the extra cost is
    /// one atomic load.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name: name.to_owned(),
            start: Instant::now(),
            _flight: crate::flight::span(name),
        }
    }

    /// Times a closure under the given span name and returns its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _guard = self.span(name);
        f()
    }

    /// Adds one completed measurement.
    pub fn record(&self, name: &str, elapsed: Duration) {
        let mut totals = self.totals.lock().expect("span recorder poisoned");
        if let Some(entry) = totals.iter_mut().find(|t| t.name == name) {
            entry.total += elapsed;
            entry.count += 1;
        } else {
            totals.push(SpanTotals {
                name: name.to_owned(),
                total: elapsed,
                count: 1,
            });
        }
    }

    /// Snapshot of all span totals, in first-recorded order.
    #[must_use]
    pub fn totals(&self) -> Vec<SpanTotals> {
        self.totals.lock().expect("span recorder poisoned").clone()
    }

    /// Removes all recorded spans (for per-run use of the global
    /// recorder).
    pub fn reset(&self) {
        self.totals.lock().expect("span recorder poisoned").clear();
    }
}

/// RAII guard measuring one scope; reports to its [`Recorder`] on drop.
#[derive(Debug)]
pub struct SpanGuard<'r> {
    recorder: &'r Recorder,
    name: String,
    start: Instant,
    // Mirrors the scope into the flight recorder when tracing is on
    // (inert otherwise). Dropped after the recorder entry is written;
    // both measure with their own clocks.
    _flight: crate::flight::FlightGuard,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.record(&self.name, self.start.elapsed());
    }
}

/// The process-wide recorder used by [`span`].
pub fn global_recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

/// Starts a span on the global recorder.
///
/// ```
/// {
///     let _g = oslay_observe::span("study.profile");
///     // ... timed work ...
/// }
/// let totals = oslay_observe::global_recorder().totals();
/// assert!(totals.iter().any(|t| t.name == "study.profile"));
/// ```
#[must_use]
pub fn span(name: &str) -> SpanGuard<'static> {
    global_recorder().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let rec = Recorder::new();
        {
            let _g = rec.span("phase.a");
        }
        let totals = rec.totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].name, "phase.a");
        assert_eq!(totals[0].count, 1);
    }

    #[test]
    fn same_name_aggregates() {
        let rec = Recorder::new();
        for _ in 0..3 {
            rec.time("phase.b", || std::hint::black_box(1 + 1));
        }
        let totals = rec.totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].count, 3);
    }

    #[test]
    fn time_returns_closure_result() {
        let rec = Recorder::new();
        let v = rec.time("phase.c", || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn distinct_names_stay_separate_in_order() {
        let rec = Recorder::new();
        rec.record("first", Duration::from_millis(1));
        rec.record("second", Duration::from_millis(2));
        rec.record("first", Duration::from_millis(3));
        let totals = rec.totals();
        assert_eq!(totals[0].name, "first");
        assert_eq!(totals[0].total, Duration::from_millis(4));
        assert_eq!(totals[1].name, "second");
        rec.reset();
        assert!(rec.totals().is_empty());
    }

    #[test]
    fn recorder_is_usable_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        rec.record("mt", Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(rec.totals()[0].count, 200);
    }
}
