//! Seeded property tests for the hand-rolled JSON codec and the
//! report-comparison gate — the same coverage a property-testing
//! framework would give, with no external crate: every failure
//! reproduces from the fixed seed alone.

use oslay_observe::json::{parse, JsonValue};
use oslay_observe::{compare, RunReport};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite f64 spanning integers, small reals, and large magnitudes.
    fn number(&mut self) -> f64 {
        match self.below(4) {
            0 => self.below(2_000) as f64 - 1_000.0, // small integers
            1 => (self.next() as i64) as f64,        // huge integers
            2 => f64::from_bits(0x3ff0_0000_0000_0000 | (self.next() >> 12)), // [1, 2)
            _ => {
                let mantissa = (self.below(2_000_000) as f64 - 1_000_000.0) / 1_000.0;
                let exp = self.below(40) as i32 - 20;
                let v = mantissa * 10f64.powi(exp);
                if v.is_finite() {
                    v
                } else {
                    0.0
                }
            }
        }
    }

    /// A string mixing ASCII, quotes, backslashes, control chars, and
    /// multi-byte unicode — everything the escaper must handle.
    fn string(&mut self) -> String {
        let alphabet: &[char] = &[
            'a', 'B', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{8}', '\u{c}', '\u{1}', 'é',
            '日', '🦀', '\u{7f}',
        ];
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize])
            .collect()
    }

    /// A random JSON tree, depth-bounded so generation terminates.
    fn value(&mut self, depth: u32) -> JsonValue {
        let choices = if depth == 0 { 4 } else { 6 };
        match self.below(choices) {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(self.below(2) == 0),
            2 => JsonValue::Num(self.number()),
            3 => JsonValue::Str(self.string()),
            4 => {
                let n = self.below(5) as usize;
                JsonValue::Array((0..n).map(|_| self.value(depth - 1)).collect())
            }
            _ => {
                let n = self.below(5) as usize;
                JsonValue::Object(
                    (0..n)
                        .map(|i| (format!("k{i}_{}", self.string()), self.value(depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

#[test]
fn json_roundtrip_holds_over_random_trees() {
    let mut rng = Rng::new(0x0b5e_71e5);
    for case in 0..500 {
        let value = rng.value(4);
        let text = value.to_json();
        let back = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e} in {text}"));
        assert_eq!(back, value, "case {case}: round-trip diverged for {text}");
        // Pretty form must parse back to the same tree too.
        let pretty = value.to_json_pretty();
        let back = parse(&pretty).unwrap_or_else(|e| panic!("case {case}: pretty: {e}"));
        assert_eq!(back, value, "case {case}: pretty round-trip diverged");
    }
}

#[test]
fn json_serialization_is_deterministic() {
    let mut rng = Rng::new(0xdead_beef);
    for _ in 0..100 {
        let value = rng.value(3);
        assert_eq!(value.to_json(), value.to_json());
        // A re-parsed tree serializes to the identical bytes: the codec
        // normalizes nothing behind the caller's back.
        let reparsed = parse(&value.to_json()).expect("valid");
        assert_eq!(reparsed.to_json(), value.to_json());
    }
}

#[test]
fn json_nonfinite_numbers_become_null() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let v = JsonValue::Array(vec![JsonValue::Num(bad)]);
        assert_eq!(v.to_json(), "[null]");
        assert_eq!(
            parse(&v.to_json()).expect("valid"),
            JsonValue::Array(vec![JsonValue::Null])
        );
    }
}

fn report(fields: &[(&str, f64)]) -> RunReport {
    let mut r = RunReport::new("prop");
    r.add_section("sec", fields.iter().map(|&(k, v)| (k, v)));
    r
}

#[test]
fn compare_zero_tolerance_accepts_exact_equality() {
    let mut rng = Rng::new(0xc0_ffee);
    for _ in 0..200 {
        let v = rng.number().abs();
        let a = report(&[("x", v)]);
        let b = report(&[("x", v)]);
        assert!(
            compare(&a, &b, 0.0).is_empty(),
            "equal values must pass at zero tolerance (v = {v})"
        );
    }
}

#[test]
fn compare_flags_iff_above_tolerance() {
    let mut rng = Rng::new(0x5eed_5eed);
    for _ in 0..200 {
        let base = rng.below(1_000_000) as f64 / 1_000.0 + 0.001;
        let tol = rng.below(50) as f64 / 100.0; // 0 .. 0.49
        let worse = report(&[("x", base * (1.0 + tol) * 1.01)]);
        let fine = report(&[("x", base * (1.0 + tol) * 0.99)]);
        let baseline = report(&[("x", base)]);
        assert_eq!(
            compare(&baseline, &worse, tol).len(),
            1,
            "base={base} tol={tol}"
        );
        assert!(
            compare(&baseline, &fine, tol).is_empty(),
            "base={base} tol={tol}"
        );
    }
}

#[test]
fn compare_ignores_sections_missing_from_either_side() {
    let mut baseline = RunReport::new("a");
    baseline.add_section("only_in_baseline", [("x", 1.0)]);
    let mut current = RunReport::new("b");
    current.add_section("only_in_current", [("x", 100.0)]);
    // No shared fields -> nothing to flag, in either direction.
    assert!(compare(&baseline, &current, 0.0).is_empty());
    assert!(compare(&current, &baseline, 0.0).is_empty());
}

#[test]
fn compare_never_flags_nan_fields() {
    // NaN compares false with everything, so a NaN on either side must
    // not produce a (meaningless) regression.
    let nan = report(&[("x", f64::NAN)]);
    let num = report(&[("x", 1.0)]);
    assert!(compare(&nan, &num, 0.0).is_empty());
    assert!(compare(&num, &nan, 0.0).is_empty());
    assert!(compare(&nan, &nan, 0.0).is_empty());
}
