//! Edge cases of the trace→fetch-stream mapping in `klayout::address`:
//! zero-word and minimal blocks, spans abutting a logical-cache boundary,
//! and blocks whose final chunk is a partial word.

use oslay_layout::{fetch_stream, Layout, LayoutBuilder};
use oslay_model::{BlockId, Domain, Program, ProgramBuilder, SeedKind, Terminator, WORD_BYTES};
use oslay_trace::TraceEvent;

const LOGICAL_CACHE: u64 = 8192;

/// A minimal valid OS program: one 16-byte routine per seed kind, then one
/// extra routine holding Return-terminated blocks of the given sizes.
fn sized_program(sizes: &[u32]) -> (Program, Vec<BlockId>) {
    let mut b = ProgramBuilder::new(Domain::Os);
    let mut seeds = Vec::new();
    for kind in SeedKind::ALL {
        let r = b.begin_routine(format!("seed_{kind}"));
        let entry = b.add_block(16);
        b.terminate(entry, Terminator::Return);
        b.end_routine();
        seeds.push((kind, r));
    }
    b.begin_routine("edge_blocks");
    let mut ids = Vec::new();
    for &size in sizes {
        // No fallthrough: these blocks are placed at explicit addresses,
        // and a fallthrough would earn a stretch word that shifts them.
        let blk = b.add_block_no_fallthrough(size);
        b.terminate(blk, Terminator::Return);
        ids.push(blk);
    }
    b.end_routine();
    for (kind, r) in seeds {
        b.set_seed(kind, r);
    }
    (b.build().expect("valid edge program"), ids)
}

/// Places the seed blocks sequentially from 0, then each edge block at the
/// caller's explicit address.
fn layout_at(program: &Program, placed: &[(BlockId, u64)]) -> Layout {
    let mut b = LayoutBuilder::new(program, "edges", 0);
    let explicit: Vec<BlockId> = placed.iter().map(|&(id, _)| id).collect();
    for (id, _) in program.blocks() {
        if !explicit.contains(&id) {
            b.place(id);
        }
    }
    for &(id, addr) in placed {
        b.place_at(id, addr);
    }
    b.finish().expect("edge layout places every block")
}

fn os_event(id: BlockId) -> TraceEvent {
    TraceEvent::Block {
        id,
        domain: Domain::Os,
    }
}

#[test]
fn zero_words_fetch_nothing_and_one_byte_fetches_one_word() {
    // Zero-size blocks cannot exist: the model builder rejects them, so
    // the zero-word case lives entirely in `fetch_words` (and zero-size
    // *spans* in hand-built views are kverify's KV008). The smallest
    // placeable block is one byte, which still costs one full word fetch.
    assert_eq!(oslay_model::fetch_words(0), 0);
    let (program, ids) = sized_program(&[1, 8]);
    let layout = layout_at(&program, &[(ids[0], 4096), (ids[1], 4200)]);
    let events = [os_event(ids[0]), os_event(ids[1])];
    let fetches: Vec<(u64, Domain)> = fetch_stream(&events, &layout, None).collect();
    assert_eq!(fetches.len(), 3, "one word for the 1-byte block, two for 8");
    assert_eq!(fetches[0].0, 4096);
    assert_eq!(fetches[1].0, 4200);
    assert_eq!(fetches[2].0, 4200 + u64::from(WORD_BYTES));
    assert_eq!(layout.fetch_words(ids[0]), 1);
    assert_eq!(layout.fetch_addrs(ids[0]).count(), 1);
}

#[test]
fn final_partial_word_fetches_exactly_once() {
    // 21 bytes = 5 full words + one 1-byte tail: six fetches, the last at
    // byte offset 20, never a seventh touching bytes past the block.
    let (program, ids) = sized_program(&[21]);
    let base = 4096u64;
    let layout = layout_at(&program, &[(ids[0], base)]);
    let events = [os_event(ids[0])];
    let fetches: Vec<u64> = fetch_stream(&events, &layout, None)
        .map(|(addr, _)| addr)
        .collect();
    assert_eq!(fetches.len(), 6);
    assert_eq!(*fetches.last().unwrap(), base + 20);
    assert!(fetches.iter().all(|&a| a < base + 24));
    // The iterator and the layout's own per-block view must agree.
    let direct: Vec<u64> = layout.fetch_addrs(ids[0]).collect();
    assert_eq!(fetches, direct);
}

#[test]
fn span_abutting_logical_cache_boundary_stays_inside_it() {
    // Block A ends exactly at the logical-cache boundary; block B starts
    // exactly on it. No fetch of A may cross into the next logical cache,
    // and B's first fetch lands on set 0 of the next one.
    let (program, ids) = sized_program(&[32, 32]);
    let layout = layout_at(
        &program,
        &[(ids[0], LOGICAL_CACHE - 32), (ids[1], LOGICAL_CACHE)],
    );
    let events = [os_event(ids[0]), os_event(ids[1])];
    let fetches: Vec<u64> = fetch_stream(&events, &layout, None)
        .map(|(addr, _)| addr)
        .collect();
    assert_eq!(fetches.len(), 16);
    let (a, b) = fetches.split_at(8);
    assert!(a.iter().all(|&addr| addr < LOGICAL_CACHE));
    assert_eq!(*a.last().unwrap(), LOGICAL_CACHE - u64::from(WORD_BYTES));
    assert_eq!(b[0], LOGICAL_CACHE);
    assert_eq!(b[0] % LOGICAL_CACHE, 0, "first word of B maps to set 0");
    // Abutting is not overlapping: the two spans share no address.
    assert!(a.iter().all(|addr| !b.contains(addr)));
}
