//! The layout representation: block → address, with branch-stretch
//! accounting.

use std::error::Error;
use std::fmt;

use oslay_model::{fetch_words, BlockId, Program, WORD_BYTES};
use oslay_profile::Profile;

/// Errors detected when finalizing a layout.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LayoutError {
    /// A block was never placed.
    Unplaced(BlockId),
    /// Two blocks overlap in memory.
    Overlap {
        /// First block (lower address).
        a: BlockId,
        /// Second block.
        b: BlockId,
    },
    /// An assembled block's effective size is not its block size plus a
    /// valid stretch (zero or one escape-branch word).
    BadSpan(BlockId),
    /// An assembled block claims fall-through adjacency (zero stretch)
    /// but its fall-through successor is placed elsewhere.
    MissingStretch(BlockId),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Unplaced(b) => write!(f, "block {b} was never placed"),
            LayoutError::Overlap { a, b } => write!(f, "blocks {a} and {b} overlap"),
            LayoutError::BadSpan(b) => {
                write!(f, "block {b} has an invalid effective size")
            }
            LayoutError::MissingStretch(b) => write!(
                f,
                "block {b} has no escape branch but its fall-through is not adjacent"
            ),
        }
    }
}

impl Error for LayoutError {}

/// A finished code layout: every block of one program has an address.
///
/// Moving a block away from its natural fall-through successor costs one
/// extra instruction word (an unconditional branch). That *stretch* is
/// charged exactly — a block followed immediately by its fall-through pays
/// nothing — so [`Layout::dynamic_overhead`] reproduces the dynamic code
/// growth the paper measures at about 2% (Section 4.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Layout {
    name: String,
    addr: Vec<u64>,
    /// Effective size in bytes (block size + stretch).
    bytes: Vec<u32>,
    /// Number of word fetches per block execution.
    words: Vec<u32>,
    /// Stretch bytes per block.
    stretch: Vec<u32>,
    span_end: u64,
}

impl Layout {
    /// The layout's name (e.g. `"Base"`, `"OptS"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Start address of a block.
    #[must_use]
    pub fn addr(&self, block: BlockId) -> u64 {
        self.addr[block.index()]
    }

    /// Effective size of a block in bytes, including stretch.
    #[must_use]
    pub fn effective_size(&self, block: BlockId) -> u32 {
        self.bytes[block.index()]
    }

    /// Number of instruction-word fetches one execution of `block` issues.
    #[must_use]
    pub fn fetch_words(&self, block: BlockId) -> u32 {
        self.words[block.index()]
    }

    /// Stretch (added branch bytes) of a block.
    #[must_use]
    pub fn stretch(&self, block: BlockId) -> u32 {
        self.stretch[block.index()]
    }

    /// Highest used address plus one.
    #[must_use]
    pub fn span_end(&self) -> u64 {
        self.span_end
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.addr.len()
    }

    /// Iterates the word-fetch addresses of one block execution.
    pub fn fetch_addrs(&self, block: BlockId) -> impl Iterator<Item = u64> + '_ {
        let base = self.addr(block);
        (0..self.fetch_words(block)).map(move |w| base + u64::from(w) * u64::from(WORD_BYTES))
    }

    /// Dynamic code-size overhead of the layout under a profile: extra
    /// words fetched (stretch) divided by baseline words fetched.
    #[must_use]
    pub fn dynamic_overhead(&self, program: &Program, profile: &Profile) -> f64 {
        let mut base_words = 0u64;
        let mut extra_words = 0u64;
        for (id, block) in program.blocks() {
            let n = profile.node_weight(id);
            if n == 0 {
                continue;
            }
            base_words += n * u64::from(fetch_words(block.size()));
            let with_stretch = fetch_words(block.size() + self.stretch(id));
            extra_words += n * u64::from(with_stretch - fetch_words(block.size()));
        }
        if base_words == 0 {
            return 0.0;
        }
        extra_words as f64 / base_words as f64
    }

    /// Static code size in bytes (sum of effective sizes).
    #[must_use]
    pub fn static_bytes(&self) -> u64 {
        self.bytes.iter().map(|&b| u64::from(b)).sum()
    }

    /// Materializes a layout from an explicit per-block address map —
    /// the way a searched `LayoutView` becomes a placed, simulatable
    /// layout again.
    ///
    /// [`LayoutBuilder`] charges stretch *online* while placing; an
    /// address map produced by mutating a finished layout already carries
    /// its stretch inside each effective size, so this constructor
    /// validates the accounting instead of re-deriving it. For every
    /// block, `bytes[i]` must equal the block's size plus a stretch of
    /// zero or one escape-branch word ([`WORD_BYTES`]), and a block with
    /// a fall-through successor must either pay the stretch word or have
    /// that successor placed exactly at its end. Mutations that move
    /// whole fall-through-glued runs (the search engine's atoms) preserve
    /// this by construction; anything else is rejected rather than
    /// silently mis-costed.
    ///
    /// # Errors
    ///
    /// [`LayoutError::BadSpan`] for an invalid effective size,
    /// [`LayoutError::MissingStretch`] for a broken unstretch'd
    /// fall-through, [`LayoutError::Overlap`] for intersecting spans.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the program's block
    /// count.
    pub fn assemble(
        program: &Program,
        name: impl Into<String>,
        addr: &[u64],
        bytes: &[u32],
    ) -> Result<Layout, LayoutError> {
        let n = program.num_blocks();
        assert_eq!(addr.len(), n, "one address per block");
        assert_eq!(bytes.len(), n, "one effective size per block");

        let mut words = vec![0u32; n];
        let mut stretch = vec![0u32; n];
        for (id, block) in program.blocks() {
            let i = id.index();
            let s = bytes[i]
                .checked_sub(block.size())
                .ok_or(LayoutError::BadSpan(id))?;
            if s != 0 && s != WORD_BYTES {
                return Err(LayoutError::BadSpan(id));
            }
            if s == 0 {
                if let Some(ft) = block.fallthrough() {
                    if addr[ft.index()] != addr[i] + u64::from(block.size()) {
                        return Err(LayoutError::MissingStretch(id));
                    }
                }
            }
            stretch[i] = s;
            words[i] = fetch_words(bytes[i]);
        }

        let mut by_addr: Vec<BlockId> = (0..n).map(BlockId::new).collect();
        by_addr.sort_by_key(|b| addr[b.index()]);
        for pair in by_addr.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let end_a = addr[a.index()] + u64::from(bytes[a.index()]);
            if end_a > addr[b.index()] {
                return Err(LayoutError::Overlap { a, b });
            }
        }
        let span_end = by_addr
            .last()
            .map(|&b| addr[b.index()] + u64::from(bytes[b.index()]))
            .unwrap_or(0);

        Ok(Layout {
            name: name.into(),
            addr: addr.to_vec(),
            bytes: bytes.to_vec(),
            words,
            stretch,
            span_end,
        })
    }
}

/// Builds a [`Layout`] by placing blocks in memory order.
///
/// [`LayoutBuilder::place`] appends a block at the cursor;
/// [`LayoutBuilder::skip_to`] moves the cursor forward (leaving a gap);
/// [`LayoutBuilder::place_at`] jumps anywhere. Stretch is resolved online:
/// when a placed block's natural fall-through is the very next placement,
/// no branch is charged; any other continuation charges one word to the
/// earlier block (its escape branch) before the next address is assigned.
#[derive(Debug)]
pub struct LayoutBuilder<'p> {
    program: &'p Program,
    name: String,
    cursor: u64,
    addr: Vec<Option<u64>>,
    stretch: Vec<u32>,
    /// Last sequentially placed block whose stretch is still undecided.
    pending: Option<BlockId>,
}

impl<'p> LayoutBuilder<'p> {
    /// Starts a layout at base address `base`.
    #[must_use]
    pub fn new(program: &'p Program, name: impl Into<String>, base: u64) -> Self {
        Self {
            program,
            name: name.into(),
            cursor: base,
            addr: vec![None; program.num_blocks()],
            stretch: vec![0; program.num_blocks()],
            pending: None,
        }
    }

    /// Upper bound on the next placement address: the cursor plus the
    /// pending block's potential stretch word. Use this for region
    /// bookkeeping (e.g. logical-cache window checks).
    #[must_use]
    pub fn cursor(&self) -> u64 {
        let pending_stretch = self
            .pending
            .filter(|&b| self.program.block(b).fallthrough().is_some())
            .map_or(0, |_| u64::from(WORD_BYTES));
        self.cursor + pending_stretch
    }

    /// True if `block` has already been placed.
    #[must_use]
    pub fn is_placed(&self, block: BlockId) -> bool {
        self.addr[block.index()].is_some()
    }

    fn resolve_pending(&mut self, next: Option<BlockId>) {
        if let Some(prev) = self.pending.take() {
            let ft = self.program.block(prev).fallthrough();
            if ft.is_some() && ft != next {
                self.stretch[prev.index()] = WORD_BYTES;
                self.cursor += u64::from(WORD_BYTES);
            }
        }
    }

    /// Places `block` at the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the block is already placed.
    pub fn place(&mut self, block: BlockId) {
        assert!(
            self.addr[block.index()].is_none(),
            "block {block} placed twice"
        );
        self.resolve_pending(Some(block));
        self.addr[block.index()] = Some(self.cursor);
        self.cursor += u64::from(self.program.block(block).size());
        self.pending = Some(block);
    }

    /// Moves the cursor forward to `addr`, leaving a gap.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is behind the (stretch-resolved) cursor.
    pub fn skip_to(&mut self, addr: u64) {
        self.resolve_pending(None);
        assert!(addr >= self.cursor, "cannot move the cursor backwards");
        self.cursor = addr;
    }

    /// Places `block` at an explicit address and continues the cursor from
    /// its end (the address may be anywhere, including before the cursor).
    ///
    /// # Panics
    ///
    /// Panics if the block is already placed.
    pub fn place_at(&mut self, block: BlockId, addr: u64) {
        assert!(
            self.addr[block.index()].is_none(),
            "block {block} placed twice"
        );
        self.resolve_pending(None);
        self.cursor = addr;
        self.addr[block.index()] = Some(addr);
        self.cursor += u64::from(self.program.block(block).size());
        self.pending = Some(block);
    }

    /// Finalizes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if a block is unplaced or two blocks
    /// overlap.
    pub fn finish(mut self) -> Result<Layout, LayoutError> {
        self.resolve_pending(None);
        let n = self.program.num_blocks();
        let mut addr = vec![0u64; n];
        for (i, slot) in self.addr.iter().enumerate() {
            match slot {
                Some(a) => addr[i] = *a,
                None => return Err(LayoutError::Unplaced(BlockId::new(i))),
            }
        }

        let mut bytes = vec![0u32; n];
        let mut words = vec![0u32; n];
        for (id, block) in self.program.blocks() {
            let b = block.size() + self.stretch[id.index()];
            bytes[id.index()] = b;
            words[id.index()] = fetch_words(b);
        }

        let mut by_addr: Vec<BlockId> = (0..n).map(BlockId::new).collect();
        by_addr.sort_by_key(|b| addr[b.index()]);
        for pair in by_addr.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let end_a = addr[a.index()] + u64::from(bytes[a.index()]);
            if end_a > addr[b.index()] {
                return Err(LayoutError::Overlap { a, b });
            }
        }

        let span_end = by_addr
            .last()
            .map(|&b| addr[b.index()] + u64::from(bytes[b.index()]))
            .unwrap_or(0);

        Ok(Layout {
            name: self.name,
            addr,
            bytes,
            words,
            stretch: self.stretch,
            span_end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::{Domain, ProgramBuilder, SeedKind, Terminator};

    fn chain_program() -> (Program, Vec<BlockId>) {
        let mut b = ProgramBuilder::new(Domain::Os);
        let r = b.begin_routine("f");
        let x = b.add_block(10);
        let y = b.add_block(20);
        let z = b.add_block(30);
        b.terminate(x, Terminator::Jump(y));
        b.terminate(y, Terminator::Jump(z));
        b.terminate(z, Terminator::Return);
        b.end_routine();
        for kind in SeedKind::ALL {
            b.set_seed(kind, r);
        }
        (b.build().unwrap(), vec![x, y, z])
    }

    #[test]
    fn sequential_placement_is_tight_and_stretch_free() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        for &b in &blocks {
            lb.place(b);
        }
        let l = lb.finish().unwrap();
        assert_eq!(l.addr(blocks[0]), 0);
        assert_eq!(l.addr(blocks[1]), 10);
        assert_eq!(l.addr(blocks[2]), 30);
        assert_eq!(l.stretch(blocks[0]), 0);
        assert_eq!(l.stretch(blocks[1]), 0);
        assert_eq!(l.span_end(), 60);
    }

    #[test]
    fn reordered_placement_charges_stretch() {
        let (p, blocks) = chain_program();
        let (x, y, z) = (blocks[0], blocks[1], blocks[2]);
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place(y); // y falls through to z originally
        lb.place(x); // ...but x comes next: y is stretched
        lb.place(z); // x falls through to y, not z: x is stretched
        let l = lb.finish().unwrap();
        assert_eq!(l.stretch(y), WORD_BYTES);
        assert_eq!(l.stretch(x), WORD_BYTES);
        assert_eq!(l.stretch(z), 0, "z has no fall-through");
        assert_eq!(l.addr(y), 0);
        assert_eq!(l.addr(x), 24); // 20 + 4 stretch
        assert_eq!(l.addr(z), 38); // 24 + 10 + 4 stretch
    }

    #[test]
    fn unplaced_block_is_an_error() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place(blocks[0]);
        lb.place(blocks[1]);
        assert_eq!(lb.finish().unwrap_err(), LayoutError::Unplaced(blocks[2]));
    }

    #[test]
    fn overlap_is_detected() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place_at(blocks[0], 0);
        lb.place_at(blocks[1], 4); // overlaps x (size 10)
        lb.place_at(blocks[2], 100);
        assert!(matches!(
            lb.finish().unwrap_err(),
            LayoutError::Overlap { .. }
        ));
    }

    #[test]
    fn fetch_addrs_are_word_spaced() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        for &b in &blocks {
            lb.place(b);
        }
        let l = lb.finish().unwrap();
        let addrs: Vec<u64> = l.fetch_addrs(blocks[0]).collect();
        // 10 bytes → 3 words.
        assert_eq!(addrs, vec![0, 4, 8]);
    }

    #[test]
    fn skip_to_breaks_adjacency() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place(blocks[0]);
        lb.skip_to(1000);
        lb.place(blocks[1]);
        lb.place(blocks[2]);
        let l = lb.finish().unwrap();
        assert_eq!(l.addr(blocks[1]), 1000);
        assert_eq!(l.stretch(blocks[0]), WORD_BYTES);
        assert_eq!(l.stretch(blocks[1]), 0);
    }

    #[test]
    fn cursor_is_conservative_about_pending_stretch() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place(blocks[0]); // size 10, may need a stretch word
        assert_eq!(lb.cursor(), 14);
        lb.place(blocks[1]); // adjacent fall-through: stretch resolved to 0
        assert_eq!(lb.cursor(), 34, "y(20) at 10, pending stretch 4");
        let l = {
            let mut lb = lb;
            lb.place(blocks[2]);
            lb.finish().unwrap()
        };
        assert_eq!(l.stretch(blocks[0]), 0);
    }

    #[test]
    fn place_at_can_go_backwards() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 1000);
        lb.place(blocks[1]);
        lb.place(blocks[2]);
        lb.place_at(blocks[0], 0);
        let l = lb.finish().unwrap();
        assert_eq!(l.addr(blocks[0]), 0);
        assert_eq!(l.addr(blocks[1]), 1000);
    }

    #[test]
    fn place_at_chains_adjacency_for_following_place() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place_at(blocks[0], 100);
        lb.place(blocks[1]); // x's fall-through: adjacent, no stretch
        lb.place(blocks[2]);
        let l = lb.finish().unwrap();
        assert_eq!(l.addr(blocks[1]), 110);
        assert_eq!(l.stretch(blocks[0]), 0);
        assert_eq!(l.stretch(blocks[1]), 0);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_placement_panics() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place(blocks[0]);
        lb.place(blocks[0]);
    }

    /// Round-trips a finished layout through its raw address map.
    fn reassemble(p: &Program, l: &Layout) -> Result<Layout, LayoutError> {
        let n = l.num_blocks();
        let addr: Vec<u64> = (0..n).map(|i| l.addr(BlockId::new(i))).collect();
        let bytes: Vec<u32> = (0..n).map(|i| l.effective_size(BlockId::new(i))).collect();
        Layout::assemble(p, l.name(), &addr, &bytes)
    }

    #[test]
    fn assemble_round_trips_builder_layouts() {
        let (p, blocks) = chain_program();
        // A stretched layout exercises both stretch cases.
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        lb.place(blocks[1]);
        lb.place(blocks[0]);
        lb.place(blocks[2]);
        let l = lb.finish().unwrap();
        let r = reassemble(&p, &l).expect("honest address map assembles");
        assert_eq!(r, l, "assemble reproduces the builder's layout exactly");
    }

    #[test]
    fn assemble_rejects_broken_fallthrough_adjacency() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        for &b in &blocks {
            lb.place(b);
        }
        let l = lb.finish().unwrap();
        let n = l.num_blocks();
        let mut addr: Vec<u64> = (0..n).map(|i| l.addr(BlockId::new(i))).collect();
        let bytes: Vec<u32> = (0..n).map(|i| l.effective_size(BlockId::new(i))).collect();
        // Move y away from x's end without charging x a stretch word.
        addr[blocks[1].index()] = 1000;
        assert_eq!(
            Layout::assemble(&p, "t", &addr, &bytes).unwrap_err(),
            LayoutError::MissingStretch(blocks[0])
        );
    }

    #[test]
    fn assemble_rejects_bad_spans_and_overlaps() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        for &b in &blocks {
            lb.place(b);
        }
        let l = lb.finish().unwrap();
        let n = l.num_blocks();
        let addr: Vec<u64> = (0..n).map(|i| l.addr(BlockId::new(i))).collect();
        let mut bytes: Vec<u32> = (0..n).map(|i| l.effective_size(BlockId::new(i))).collect();
        bytes[blocks[2].index()] += 1; // not a whole stretch word
        assert_eq!(
            Layout::assemble(&p, "t", &addr, &bytes).unwrap_err(),
            LayoutError::BadSpan(blocks[2])
        );
        let bad_addr = vec![0u64, 4, 100];
        let sizes: Vec<u32> = (0..n).map(|i| l.effective_size(BlockId::new(i))).collect();
        assert!(matches!(
            Layout::assemble(&p, "t", &bad_addr, &sizes).unwrap_err(),
            LayoutError::Overlap { .. } | LayoutError::MissingStretch(_)
        ));
    }

    #[test]
    fn dynamic_overhead_zero_for_empty_profile() {
        let (p, blocks) = chain_program();
        let mut lb = LayoutBuilder::new(&p, "t", 0);
        for &b in &blocks {
            lb.place(b);
        }
        let l = lb.finish().unwrap();
        let profile = Profile::empty(&p);
        assert_eq!(l.dynamic_overhead(&p, &profile), 0.0);
    }
}
