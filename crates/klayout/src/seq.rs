//! Sequence construction (Section 4.1).
//!
//! A *sequence* is a chain of basic blocks, possibly spanning tens of
//! routines, that the kernel executes nearly deterministically — e.g. the
//! common path of page-fault handling. Sequences are grown greedily from
//! the four seeds under a pair of thresholds:
//!
//! * `ExecThresh` — a block qualifies only if its execution count is at
//!   least this fraction of all block executions;
//! * `BranchThresh` — an arc is followed only if its measured probability
//!   (arc weight over source weight) is at least this value.
//!
//! The algorithm repeatedly lowers the thresholds (the paper's Table 4
//! schedule), capturing code in segments of decreasing popularity, so that
//! popular sequences are placed next to other equally popular ones and
//! cannot conflict with them. When a growth step has no acceptable
//! successor, the walk restarts "from the seed": the heaviest arc from any
//! block already captured for this seed into fresh acceptable code.

use oslay_model::{BlockId, Program, SeedKind};
use oslay_profile::Profile;

/// One pass of the threshold schedule.
#[derive(Copy, Clone, Debug)]
pub struct ThresholdPass {
    /// Minimum execution-count fraction for a block to be captured.
    pub exec: f64,
    /// Per-seed branch threshold; `None` = this seed does not participate
    /// in this pass yet (Table 4 staggers the seeds).
    pub branch: [Option<f64>; 4],
}

/// A full descending threshold schedule.
#[derive(Clone, Debug)]
pub struct ThresholdSchedule {
    /// Passes, applied in order.
    pub passes: Vec<ThresholdPass>,
}

impl ThresholdSchedule {
    /// The Table 4 schedule: six passes of descending `ExecThresh`, with
    /// each seed's `BranchThresh` starting at 40% one pass after the
    /// previous seed and descending a decade per pass.
    ///
    /// The paper picks its first `ExecThresh` (1.4%) "somewhat
    /// arbitrarily" such that the passes yield reasonably-sized (1–4 KB)
    /// sequences on *its* kernel's block-weight distribution. The
    /// synthetic kernel's distribution is slightly flatter (its hottest
    /// block holds ≈ 3% of the weight vs the paper's ≈ 5%), so the exec
    /// levels here are shifted down to satisfy the same sizing criterion;
    /// the staggering and the branch thresholds are the paper's.
    #[must_use]
    pub fn paper() -> Self {
        let b = |i: Option<f64>, p: Option<f64>, s: Option<f64>, o: Option<f64>| [i, p, s, o];
        Self {
            passes: vec![
                ThresholdPass {
                    exec: 0.003,
                    branch: b(Some(0.4), None, None, None),
                },
                ThresholdPass {
                    exec: 0.001,
                    branch: b(Some(0.1), Some(0.4), None, None),
                },
                ThresholdPass {
                    exec: 0.0003,
                    branch: b(Some(0.01), Some(0.1), Some(0.4), None),
                },
                ThresholdPass {
                    exec: 0.0001,
                    branch: b(Some(0.01), Some(0.01), Some(0.1), Some(0.4)),
                },
                ThresholdPass {
                    exec: 1e-7,
                    branch: b(Some(0.001), Some(0.01), Some(0.01), Some(0.1)),
                },
                ThresholdPass {
                    exec: 0.0,
                    branch: b(Some(0.0), Some(0.0), Some(0.0), Some(0.0)),
                },
            ],
        }
    }

    /// A single pass with uniform thresholds for every seed (used by the
    /// Table 2 characterization of core/regular sequences).
    #[must_use]
    pub fn single_pass(exec: f64, branch: f64) -> Self {
        Self {
            passes: vec![ThresholdPass {
                exec,
                branch: [Some(branch); 4],
            }],
        }
    }

    /// The `ExecThresh` of the pass below which blocks count as
    /// "OtherSeq" rather than "MainSeq" in the paper's Figure 13
    /// (0.01% = 1e-4).
    pub const MAIN_SEQ_EXEC_THRESH: f64 = 1e-4;
}

impl Default for ThresholdSchedule {
    fn default() -> Self {
        Self::paper()
    }
}

/// One constructed sequence.
#[derive(Clone, Debug)]
pub struct Sequence {
    /// The seed this sequence grew from.
    pub seed: SeedKind,
    /// Index of the schedule pass that produced it.
    pub pass: usize,
    /// The pass's `ExecThresh`.
    pub exec_thresh: f64,
    /// Captured blocks, in placement order.
    pub blocks: Vec<BlockId>,
    /// Total raw size of the captured blocks in bytes.
    pub bytes: u64,
}

/// All sequences of a program, in placement (hotness) order.
#[derive(Clone, Debug)]
pub struct SequenceSet {
    sequences: Vec<Sequence>,
    captured: Vec<bool>,
}

impl SequenceSet {
    /// Sequences in placement order.
    #[must_use]
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// True if a block was captured by any sequence.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.captured[block.index()]
    }

    /// Number of captured blocks.
    #[must_use]
    pub fn num_captured(&self) -> usize {
        self.captured.iter().filter(|&&c| c).count()
    }

    /// Iterates `(sequence index, block)` in placement order.
    pub fn blocks_in_order(&self) -> impl Iterator<Item = (usize, BlockId)> + '_ {
        self.sequences
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.blocks.iter().map(move |&b| (i, b)))
    }
}

/// Grows sequences from the seeds of an OS program (or from `main` for an
/// application — pass the entry block as every "seed").
///
/// Only measured data is used: a block is acceptable if it executed, meets
/// the pass's `ExecThresh`, and is not yet captured; growth follows the
/// heaviest acceptable arc meeting `BranchThresh`.
#[must_use]
pub fn build_sequences(
    program: &Program,
    profile: &Profile,
    schedule: &ThresholdSchedule,
) -> SequenceSet {
    let seed_blocks: [Option<BlockId>; 4] = match program.domain() {
        oslay_model::Domain::Os => {
            let mut s = [None; 4];
            for kind in SeedKind::ALL {
                s[kind.index()] = program.seed_block(kind);
            }
            s
        }
        oslay_model::Domain::App => {
            // Applications have a single seed: main's entry. Attribute it
            // to the Other class slot; the remaining slots stay empty.
            let entry = program.entry().map(|r| program.routine(r).entry());
            [entry, None, None, None]
        }
    };

    let mut captured = vec![false; program.num_blocks()];
    // Per-seed region: blocks captured for that seed, used for restarts.
    let mut regions: [Vec<BlockId>; 4] = Default::default();
    let mut sequences = Vec::new();

    for (pass_idx, pass) in schedule.passes.iter().enumerate() {
        for kind_idx in 0..4 {
            let Some(branch_thresh) = pass.branch[kind_idx] else {
                continue;
            };
            let Some(seed_block) = seed_blocks[kind_idx] else {
                continue;
            };
            loop {
                let start = find_start(
                    profile,
                    &captured,
                    &regions[kind_idx],
                    seed_block,
                    pass.exec,
                    branch_thresh,
                );
                let Some(start) = start else {
                    break;
                };
                let mut seq = Sequence {
                    seed: SeedKind::from_index(kind_idx),
                    pass: pass_idx,
                    exec_thresh: pass.exec,
                    blocks: Vec::new(),
                    bytes: 0,
                };
                let mut cur = start;
                loop {
                    captured[cur.index()] = true;
                    regions[kind_idx].push(cur);
                    seq.blocks.push(cur);
                    seq.bytes += u64::from(program.block(cur).size());
                    // Follow the heaviest acceptable arc.
                    let next = profile
                        .out_arcs(cur)
                        .iter()
                        .find(|&&(dst, w)| {
                            w > 0
                                && !captured[dst.index()]
                                && profile.exec_ratio(dst) >= pass.exec
                                && profile.arc_prob(cur, dst) >= branch_thresh
                        })
                        .map(|&(dst, _)| dst);
                    match next {
                        Some(n) => cur = n,
                        None => break,
                    }
                }
                sequences.push(seq);
            }
        }
    }

    SequenceSet {
        sequences,
        captured,
    }
}

/// Finds where the next sequence of this pass starts: the seed itself if
/// still fresh, otherwise the heaviest arc out of the seed's region into
/// fresh acceptable code.
fn find_start(
    profile: &Profile,
    captured: &[bool],
    region: &[BlockId],
    seed_block: BlockId,
    exec_thresh: f64,
    branch_thresh: f64,
) -> Option<BlockId> {
    if !captured[seed_block.index()]
        && profile.node_weight(seed_block) > 0
        && profile.exec_ratio(seed_block) >= exec_thresh
    {
        return Some(seed_block);
    }
    let mut best: Option<(u64, BlockId)> = None;
    for &src in region {
        for &(dst, w) in profile.out_arcs(src) {
            if w == 0 || captured[dst.index()] {
                continue;
            }
            if profile.exec_ratio(dst) < exec_thresh {
                continue;
            }
            if profile.arc_prob(src, dst) < branch_thresh {
                continue;
            }
            if best.is_none_or(|(bw, bb)| w > bw || (w == bw && dst < bb)) {
                best = Some((w, dst));
            }
        }
    }
    best.map(|(_, b)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 55));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(6)).run(60_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p)
    }

    #[test]
    fn final_pass_captures_all_executed_blocks() {
        let (program, profile) = setup();
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        for b in profile.executed_blocks() {
            assert!(seqs.contains(b), "executed block {b} not captured");
        }
    }

    #[test]
    fn no_block_captured_twice() {
        let (program, profile) = setup();
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        let mut seen = vec![false; program.num_blocks()];
        for (_, b) in seqs.blocks_in_order() {
            assert!(!seen[b.index()], "block {b} captured twice");
            seen[b.index()] = true;
        }
        assert_eq!(
            seqs.num_captured(),
            seqs.blocks_in_order().count(),
            "captured flags match placement list"
        );
    }

    #[test]
    fn unexecuted_blocks_are_never_captured() {
        let (program, profile) = setup();
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        for (id, _) in program.blocks() {
            if profile.node_weight(id) == 0 {
                assert!(!seqs.contains(id), "cold block {id} captured");
            }
        }
    }

    #[test]
    fn early_passes_capture_hotter_blocks() {
        let (program, profile) = setup();
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        let _ = program;
        // Mean exec ratio of pass-0 blocks should exceed that of the final
        // pass's blocks.
        let mean_ratio = |pass: usize| {
            let blocks: Vec<BlockId> = seqs
                .sequences()
                .iter()
                .filter(|s| s.pass == pass)
                .flat_map(|s| s.blocks.iter().copied())
                .collect();
            if blocks.is_empty() {
                return None;
            }
            Some(blocks.iter().map(|&b| profile.exec_ratio(b)).sum::<f64>() / blocks.len() as f64)
        };
        let first = (0..schedule_len())
            .find_map(mean_ratio)
            .expect("some pass captured blocks");
        let last = (0..schedule_len()).rev().find_map(mean_ratio).unwrap();
        assert!(
            first >= last,
            "first non-empty pass mean {first} < last pass mean {last}"
        );
    }

    fn schedule_len() -> usize {
        ThresholdSchedule::paper().passes.len()
    }

    #[test]
    fn sequences_respect_exec_threshold() {
        let (program, profile) = setup();
        let _ = program;
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        for s in seqs.sequences() {
            for &b in &s.blocks {
                assert!(
                    profile.exec_ratio(b) >= s.exec_thresh,
                    "block {b} below its pass threshold"
                );
            }
        }
    }

    #[test]
    fn single_pass_produces_core_like_subset() {
        let (program, profile) = setup();
        let core = build_sequences(
            &program,
            &profile,
            &ThresholdSchedule::single_pass(0.001, 0.3),
        );
        let all = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        assert!(core.num_captured() > 0);
        assert!(core.num_captured() < all.num_captured());
    }

    #[test]
    fn sequence_bytes_match_blocks() {
        let (program, profile) = setup();
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());
        for s in seqs.sequences() {
            let bytes: u64 = s
                .blocks
                .iter()
                .map(|&b| u64::from(program.block(b).size()))
                .sum();
            assert_eq!(bytes, s.bytes);
        }
    }
}
