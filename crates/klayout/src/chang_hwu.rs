//! The Chang–Hwu / Hwu–Chang profile-guided layout (`C-H`).
//!
//! The strongest prior scheme the paper compares against ("Achieving High
//! Instruction Cache Performance with an Optimizing Compiler", ISCA 1989):
//!
//! 1. **Trace selection within each routine** — groups of basic blocks that
//!    tend to execute in sequence are identified from the profile and
//!    placed contiguously, hottest trace first;
//! 2. **Routine ordering** — routines are placed so that frequent callees
//!    follow immediately after their callers, by greedily merging placement
//!    chains along call-graph edges in decreasing weight order (the classic
//!    Pettis–Hansen closest-is-best discipline).
//!
//! Unlike the paper's `OptS`, traces never cross routine boundaries — that
//! restriction is precisely what `OptS` lifts.

use std::collections::HashMap;

use oslay_model::{BlockId, Program, RoutineId, Terminator};
use oslay_observe::{PlacementAudit, PlacementRecord};
use oslay_profile::{CallGraph, Profile};

use crate::{Layout, LayoutBuilder};

/// Computes the Chang–Hwu layout of a program.
///
/// Works for both kernel and application programs (the paper applies C-H
/// to both in Section 5.1).
#[must_use]
pub fn chang_hwu_layout(program: &Program, profile: &Profile, base_addr: u64) -> Layout {
    chang_hwu_audited(program, profile, base_addr).0
}

/// Like [`chang_hwu_layout`], but also returns the placement audit:
/// executed blocks get area `trace_order`, never-executed blocks
/// `source_order`, and `pass` records the Pettis–Hansen rank of the
/// block's routine in the final routine order.
#[must_use]
pub fn chang_hwu_audited(
    program: &Program,
    profile: &Profile,
    base_addr: u64,
) -> (Layout, PlacementAudit) {
    let mut lb = LayoutBuilder::new(program, "C-H", base_addr);
    let mut placements: Vec<(BlockId, usize)> = Vec::with_capacity(program.num_blocks());
    for (rank, routine) in routine_order(program, profile).into_iter().enumerate() {
        for block in trace_order(program, profile, routine) {
            lb.place(block);
            placements.push((block, rank));
        }
    }
    let layout = lb.finish().expect("every routine placed exactly once");
    let mut audit = PlacementAudit::new("C-H");
    for (block, rank) in placements {
        let area = if profile.node_weight(block) > 0 {
            "trace_order"
        } else {
            "source_order"
        };
        let mut rec = PlacementRecord::area_only(block.index(), layout.addr(block), area);
        rec.pass = Some(rank);
        audit.record(rec);
    }
    (layout, audit)
}

/// Intra-routine successor weights. Measured arcs are used directly; a
/// call block's fall-through to its continuation is credited with the call
/// block's own weight (the call virtually always returns), since the
/// measured transition into the continuation comes from the callee's
/// return block, not from the call block itself.
fn intra_edges(
    program: &Program,
    profile: &Profile,
    routine: RoutineId,
) -> HashMap<BlockId, Vec<(BlockId, u64)>> {
    let r = program.routine(routine);
    let mut out: HashMap<BlockId, Vec<(BlockId, u64)>> = HashMap::new();
    for &b in r.blocks() {
        let block = program.block(b);
        let mut edges = Vec::new();
        match block.terminator() {
            Terminator::Call { ret_to, .. } => {
                edges.push((*ret_to, profile.node_weight(b)));
            }
            term => {
                for dst in term.intra_successors() {
                    let w = profile.arc_weight(b, dst);
                    if w > 0 {
                        edges.push((dst, w));
                    }
                }
            }
        }
        edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.insert(b, edges);
    }
    out
}

/// Orders one routine's blocks by trace selection: hottest unplaced block
/// seeds a trace, grown forward along the heaviest intra-routine edge and
/// backward along the heaviest intra-routine in-edge; cold blocks follow
/// in source order.
fn trace_order(program: &Program, profile: &Profile, routine: RoutineId) -> Vec<BlockId> {
    let r = program.routine(routine);
    let edges = intra_edges(program, profile, routine);
    let mut in_edges: HashMap<BlockId, Vec<(BlockId, u64)>> = HashMap::new();
    for (&src, outs) in &edges {
        for &(dst, w) in outs {
            in_edges.entry(dst).or_default().push((src, w));
        }
    }
    for v in in_edges.values_mut() {
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    let mut by_weight: Vec<BlockId> = r
        .blocks()
        .iter()
        .copied()
        .filter(|&b| profile.node_weight(b) > 0)
        .collect();
    by_weight.sort_by(|&a, &b| {
        profile
            .node_weight(b)
            .cmp(&profile.node_weight(a))
            .then(a.cmp(&b))
    });

    let mut placed = vec![false; program.num_blocks()];
    let mut order: Vec<BlockId> = Vec::with_capacity(r.num_blocks());
    for &seed in &by_weight {
        if placed[seed.index()] {
            continue;
        }
        let mut trace = std::collections::VecDeque::new();
        trace.push_back(seed);
        placed[seed.index()] = true;
        // Grow forward.
        let mut cur = seed;
        while let Some(&(next, _)) = edges
            .get(&cur)
            .and_then(|es| es.iter().find(|&&(d, w)| w > 0 && !placed[d.index()]))
        {
            trace.push_back(next);
            placed[next.index()] = true;
            cur = next;
        }
        // Grow backward.
        let mut cur = seed;
        while let Some(&(prev, _)) = in_edges
            .get(&cur)
            .and_then(|es| es.iter().find(|&&(s, w)| w > 0 && !placed[s.index()]))
        {
            trace.push_front(prev);
            placed[prev.index()] = true;
            cur = prev;
        }
        order.extend(trace);
    }
    // Cold blocks in source order.
    for &b in r.blocks() {
        if !placed[b.index()] {
            placed[b.index()] = true;
            order.push(b);
        }
    }
    order
}

/// Pettis–Hansen routine ordering over the weighted call graph.
fn routine_order(program: &Program, profile: &Profile) -> Vec<RoutineId> {
    let cg = CallGraph::compute(program, profile);
    let n = program.num_routines();

    // Each routine starts as its own chain.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<RoutineId>> = (0..n).map(|i| vec![RoutineId::new(i)]).collect();

    for (caller, callee, _w) in cg.edges_by_weight() {
        let (a, b) = (chain_of[caller.index()], chain_of[callee.index()]);
        if a == b {
            continue;
        }
        // Concatenate the callee's chain after the caller's: frequent
        // callees end up immediately after their callers.
        let moved = std::mem::take(&mut chains[b]);
        for r in &moved {
            chain_of[r.index()] = a;
        }
        chains[a].extend(moved);
    }

    // Order chains by their hottest routine's invocation count, then by
    // first routine id for determinism; unexecuted singleton chains go
    // last in source order.
    let mut chain_list: Vec<Vec<RoutineId>> =
        chains.into_iter().filter(|c| !c.is_empty()).collect();
    let heat = |c: &Vec<RoutineId>| {
        c.iter()
            .map(|&r| profile.routine_invocations(r))
            .max()
            .unwrap_or(0)
    };
    chain_list.sort_by(|a, b| heat(b).cmp(&heat(a)).then(a.first().cmp(&b.first())));
    chain_list.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 77));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(7)).run(50_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p)
    }

    #[test]
    fn layout_places_every_block() {
        let (program, profile) = setup();
        let l = chang_hwu_layout(&program, &profile, 0);
        assert_eq!(l.num_blocks(), program.num_blocks());
    }

    #[test]
    fn routine_blocks_stay_contiguous() {
        let (program, profile) = setup();
        let l = chang_hwu_layout(&program, &profile, 0);
        for r in program.routines() {
            let mut addrs: Vec<u64> = r.blocks().iter().map(|&b| l.addr(b)).collect();
            addrs.sort_unstable();
            let lo = addrs[0];
            let hi = *addrs.last().unwrap();
            let total: u64 = r
                .blocks()
                .iter()
                .map(|&b| u64::from(l.effective_size(b)))
                .sum();
            // Blocks of one routine occupy one contiguous region.
            assert!(
                hi - lo < total,
                "routine {} scattered: span {} vs bytes {total}",
                r.name(),
                hi - lo
            );
        }
    }

    #[test]
    fn hot_callee_follows_its_main_caller() {
        let (program, profile) = setup();
        let cg = CallGraph::compute(&program, &profile);
        let l = chang_hwu_layout(&program, &profile, 0);
        // Pick the single heaviest call edge: callee should be placed
        // after the caller and reasonably close (same merged chain).
        if let Some(&(caller, callee, _)) = cg.edges_by_weight().first() {
            let caller_addr = l.addr(program.routine(caller).entry());
            let callee_addr = l.addr(program.routine(callee).entry());
            assert!(
                callee_addr > caller_addr,
                "heaviest callee should follow caller"
            );
        }
    }

    #[test]
    fn hot_trace_heads_each_routine() {
        let (program, profile) = setup();
        let l = chang_hwu_layout(&program, &profile, 0);
        // Within each executed routine, the hottest block is placed at the
        // routine's lowest address region start (the first trace's seed is
        // the hottest block or its backward extension).
        for r in program.routines() {
            let hot = r
                .blocks()
                .iter()
                .copied()
                .max_by_key(|&b| profile.node_weight(b));
            let Some(hot) = hot else { continue };
            if profile.node_weight(hot) == 0 {
                continue;
            }
            let min_cold = r
                .blocks()
                .iter()
                .copied()
                .filter(|&b| profile.node_weight(b) == 0)
                .map(|b| l.addr(b))
                .min();
            if let Some(min_cold) = min_cold {
                assert!(
                    l.addr(hot) < min_cold,
                    "hot block of {} placed after cold code",
                    r.name()
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let (program, profile) = setup();
        let a = chang_hwu_layout(&program, &profile, 0);
        let b = chang_hwu_layout(&program, &profile, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn audit_covers_every_block_with_routine_rank() {
        let (program, profile) = setup();
        let (layout, audit) = chang_hwu_audited(&program, &profile, 0);
        assert_eq!(audit.len(), program.num_blocks());
        assert_eq!(audit.pass_name(), "C-H");
        for (id, _) in program.blocks() {
            let rec = audit.lookup(id.index()).expect("record per block");
            assert_eq!(rec.addr, layout.addr(id));
            assert!(rec.pass.is_some(), "routine rank recorded");
            let expected = if profile.node_weight(id) > 0 {
                "trace_order"
            } else {
                "source_order"
            };
            assert_eq!(rec.area, expected);
        }
        assert!(audit.area_count("trace_order") > 0);
    }
}
