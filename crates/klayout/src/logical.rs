//! Logical-cache-aware placement (Section 4.2, Figure 10).
//!
//! Memory is viewed as a series of *logical caches*: cache-sized chunks
//! starting at multiples of the cache size. The lowest `SelfConfFree`
//! bytes of logical cache 0 hold the globally hottest basic blocks; the
//! same offset range of every other logical cache is kept free of
//! sequences and later filled with seldom-executed code, so the hottest
//! code conflicts with nothing.

use std::collections::VecDeque;
use std::ops::Range;

use oslay_model::{BlockId, Program, WORD_BYTES};

use crate::{Layout, LayoutBuilder, LayoutError};

/// Sequential allocator that skips the SelfConfFree window of every
/// logical cache.
#[derive(Debug)]
pub struct LogicalCacheAllocator<'p> {
    builder: LayoutBuilder<'p>,
    program: &'p Program,
    cache_size: u64,
    scf_size: u64,
    /// SCF windows of logical caches ≥ 1 that the hot region has passed
    /// (to be filled with cold code).
    windows: Vec<Range<u64>>,
}

impl<'p> LogicalCacheAllocator<'p> {
    /// Creates an allocator. `scf_size` may be 0 (no SelfConfFree area).
    ///
    /// # Panics
    ///
    /// Panics if `scf_size >= cache_size`.
    #[must_use]
    pub fn new(
        program: &'p Program,
        name: impl Into<String>,
        cache_size: u32,
        scf_size: u64,
    ) -> Self {
        let cache_size = u64::from(cache_size);
        assert!(
            scf_size < cache_size,
            "SelfConfFree area must be smaller than the cache"
        );
        Self {
            builder: LayoutBuilder::new(program, name, 0),
            program,
            cache_size,
            scf_size,
            windows: Vec::new(),
        }
    }

    /// Places the SelfConfFree blocks at the bottom of logical cache 0.
    ///
    /// Must be called before any sequence placement.
    ///
    /// # Panics
    ///
    /// Panics if the blocks exceed the declared SCF size or the allocator
    /// has already placed other code.
    pub fn place_scf(&mut self, blocks: &[BlockId]) {
        assert_eq!(self.builder.cursor(), 0, "SCF must be placed first");
        for &b in blocks {
            self.builder.place(b);
        }
        assert!(
            self.builder.cursor() <= self.scf_size,
            "SCF blocks exceed the reserved {} bytes",
            self.scf_size
        );
        self.builder.skip_to(self.scf_size);
    }

    /// Places one sequence block at the cursor, skipping SCF windows.
    pub fn place_hot(&mut self, block: BlockId) {
        if self.scf_size > 0 {
            let upper = u64::from(self.program.block(block).size()) + u64::from(WORD_BYTES);
            loop {
                let cur = self.builder.cursor();
                let offset = cur % self.cache_size;
                if offset < self.scf_size {
                    // Inside a window: jump past it, remembering it for
                    // cold fill (window 0 belongs to the SCF blocks).
                    let chunk = cur - offset;
                    let window_end = chunk + self.scf_size;
                    if chunk > 0 {
                        self.note_window(chunk + offset..window_end);
                    }
                    self.builder.skip_to(window_end);
                } else if offset + upper > self.cache_size {
                    // Would cross into the next chunk's window: move on.
                    let next_chunk = cur - offset + self.cache_size;
                    self.note_window(next_chunk..next_chunk + self.scf_size);
                    self.builder.skip_to(next_chunk + self.scf_size);
                } else {
                    break;
                }
            }
        }
        self.builder.place(block);
    }

    fn note_window(&mut self, w: Range<u64>) {
        if w.start < w.end && !self.windows.iter().any(|x| x.start == w.start) {
            self.windows.push(w);
        }
    }

    /// End of the hot region placed so far.
    #[must_use]
    pub fn hot_end(&self) -> u64 {
        self.builder.cursor()
    }

    /// Base address of the first completely untouched logical cache after
    /// the hot region (used by the Section 4.4 per-loop logical caches).
    #[must_use]
    pub fn next_chunk_base(&self) -> u64 {
        self.hot_end().div_ceil(self.cache_size) * self.cache_size
    }

    /// Grants access to the underlying builder for custom placement
    /// (per-loop logical caches in the `Call` optimization).
    pub fn builder_mut(&mut self) -> &mut LayoutBuilder<'p> {
        &mut self.builder
    }

    /// Registers an extra address range to be treated like an SCF window
    /// during cold fill (the Section 4.4 optimization leaves gaps that must
    /// hold "unrelated rarely-executed code").
    pub fn add_cold_window(&mut self, range: Range<u64>) {
        self.note_window(range);
    }

    /// Fills the passed SCF windows with cold code, then appends the rest
    /// of `cold` after the hot region.
    ///
    /// Returns the number of blocks placed into windows.
    pub fn fill_cold(&mut self, cold: impl IntoIterator<Item = BlockId>) -> usize {
        let hot_end = self.builder.cursor();
        self.fill_cold_from(hot_end, cold)
    }

    /// Like [`LogicalCacheAllocator::fill_cold`], but the sequential tail
    /// starts no earlier than `tail_from` (callers that placed code beyond
    /// the sequential cursor pass their true high-water mark).
    pub fn fill_cold_from(
        &mut self,
        tail_from: u64,
        cold: impl IntoIterator<Item = BlockId>,
    ) -> usize {
        let mut queue: VecDeque<BlockId> = cold.into_iter().collect();
        let mut in_windows = 0;
        let hot_end = tail_from.max(self.builder.cursor());
        let windows = std::mem::take(&mut self.windows);
        for w in &windows {
            let mut pos = w.start;
            while let Some(&b) = queue.front() {
                let upper = u64::from(self.program.block(b).size()) + u64::from(WORD_BYTES);
                if pos + upper > w.end {
                    break;
                }
                self.builder.place_at(b, pos);
                pos += upper;
                queue.pop_front();
                in_windows += 1;
            }
        }
        // Remainder goes after the hot region (beyond it, cold code may
        // run straight through future SCF offsets — only seldom-executed
        // code lands there, which is the point).
        let mut tail = hot_end;
        for w in &windows {
            tail = tail.max(w.end);
        }
        if tail > self.builder.cursor() {
            self.builder.skip_to(tail);
        } else {
            // Ensure adjacency bookkeeping does not tie the next cold
            // block to a window resident.
            self.builder.skip_to(self.builder.cursor());
        }
        while let Some(b) = queue.pop_front() {
            self.builder.place(b);
        }
        in_windows
    }

    /// Finalizes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if blocks are missing or overlap.
    pub fn finish(self) -> Result<Layout, LayoutError> {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::{Domain, ProgramBuilder, SeedKind, Terminator};

    /// A program with `n` independent 24-byte blocks in one routine.
    fn flat_program(n: usize) -> (oslay_model::Program, Vec<BlockId>) {
        let mut b = ProgramBuilder::new(Domain::Os);
        let r = b.begin_routine("f");
        let blocks: Vec<BlockId> = (0..n).map(|_| b.add_block_no_fallthrough(24)).collect();
        for &blk in &blocks {
            b.terminate(blk, Terminator::Return);
        }
        b.end_routine();
        for kind in SeedKind::ALL {
            b.set_seed(kind, r);
        }
        (b.build().unwrap(), blocks)
    }

    #[test]
    fn hot_blocks_avoid_scf_windows() {
        let (p, blocks) = flat_program(100);
        let mut alloc = LogicalCacheAllocator::new(&p, "t", 256, 64);
        alloc.place_scf(&blocks[..2]);
        for &b in &blocks[2..60] {
            alloc.place_hot(b);
        }
        let hot_end = alloc.hot_end();
        let l = {
            let mut a = alloc;
            a.fill_cold(blocks[60..].iter().copied());
            a.finish().unwrap()
        };
        for &b in &blocks[2..60] {
            let offset = l.addr(b) % 256;
            assert!(
                offset >= 64,
                "hot block {b} at offset {offset} inside an SCF window"
            );
            assert!(offset + 24 <= 256, "hot block crosses chunk boundary");
        }
        assert!(hot_end > 256, "hot region spans several logical caches");
    }

    #[test]
    fn scf_blocks_sit_at_the_bottom_of_chunk_zero() {
        let (p, blocks) = flat_program(10);
        let mut alloc = LogicalCacheAllocator::new(&p, "t", 256, 64);
        alloc.place_scf(&blocks[..2]);
        for &b in &blocks[2..6] {
            alloc.place_hot(b);
        }
        alloc.fill_cold(blocks[6..].iter().copied());
        let l = alloc.finish().unwrap();
        assert!(l.addr(blocks[0]) < 64);
        assert!(l.addr(blocks[1]) < 64);
        assert!(l.addr(blocks[2]) >= 64);
    }

    #[test]
    fn cold_fill_lands_in_windows_first() {
        let (p, blocks) = flat_program(120);
        let mut alloc = LogicalCacheAllocator::new(&p, "t", 256, 64);
        alloc.place_scf(&blocks[..2]);
        for &b in &blocks[2..60] {
            alloc.place_hot(b);
        }
        let filled = alloc.fill_cold(blocks[60..].iter().copied());
        assert!(filled > 0, "some cold blocks must land in windows");
        let l = alloc.finish().unwrap();
        // At least one cold block occupies an SCF offset of a chunk > 0.
        let in_window = blocks[60..].iter().any(|&b| {
            let a = l.addr(b);
            a >= 256 && a % 256 < 64
        });
        assert!(in_window);
    }

    #[test]
    fn zero_scf_size_means_plain_sequential() {
        let (p, blocks) = flat_program(20);
        let mut alloc = LogicalCacheAllocator::new(&p, "t", 256, 0);
        for &b in &blocks[..10] {
            alloc.place_hot(b);
        }
        alloc.fill_cold(blocks[10..].iter().copied());
        let l = alloc.finish().unwrap();
        assert_eq!(l.addr(blocks[0]), 0);
        // Dense: each block 24 bytes, no fall-through, no stretch.
        assert_eq!(l.addr(blocks[1]), 24);
    }

    #[test]
    #[should_panic(expected = "smaller than the cache")]
    fn oversized_scf_rejected() {
        let (p, _) = flat_program(4);
        let _ = LogicalCacheAllocator::new(&p, "t", 256, 256);
    }
}
