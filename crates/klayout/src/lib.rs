//! Code-placement algorithms — the paper's primary contribution.
//!
//! Given a program and a *measured* profile, each algorithm here produces a
//! [`Layout`]: an assignment of every basic block to a memory address. The
//! cache simulator then replays the same trace against each layout.
//!
//! Implemented layouts:
//!
//! * [`base_layout`] — the original source-order image (`Base`);
//! * [`chang_hwu_layout`] — Hwu & Chang's profile-guided placement
//!   (intra-routine trace selection + caller/callee routine ordering), the
//!   strongest prior scheme the paper compares against (`C-H`);
//! * [`optimize_os`] — the paper's algorithm: interprocedural **sequences**
//!   grown from the four kernel seeds under a descending
//!   `(ExecThresh, BranchThresh)` schedule (Section 4.1), a **SelfConfFree**
//!   area replicated across logical caches (Section 4.2), and optional
//!   **loop extraction** (Section 4.3) — `OptS` / `OptL`;
//! * [`optimize_app`] — the application side of `OptA` (Section 5:
//!   sequences from `main`, placed from the opposite side of the cache);
//! * [`call_opt_layout`] — the advanced loops-with-callees optimization of
//!   Section 4.4 (conflict matrix, per-loop logical caches), implemented to
//!   reproduce the paper's *negative* result (`Call` in Figure 18).
//!
//! All algorithms are deterministic and consume only measured profile data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod base;
mod call_opt;
mod chang_hwu;
mod conflict;
mod layout;
mod logical;
mod optapp;
mod opts;
mod seq;
mod summary;

pub use address::{fetch_stream, FetchStream};
pub use base::base_layout;
pub use call_opt::{call_opt_layout, CallOptParams};
pub use chang_hwu::{chang_hwu_audited, chang_hwu_layout};
pub use conflict::{address_map, code_class, layout_spans, measured_conflict_ranking};
pub use layout::{Layout, LayoutBuilder, LayoutError};
pub use logical::LogicalCacheAllocator;
pub use optapp::{optimize_app, optimize_app_audited};
pub use opts::{optimize_os, BlockClass, OptLayout, OptParams};
pub use seq::{build_sequences, Sequence, SequenceSet, ThresholdPass, ThresholdSchedule};
pub use summary::{layout_regions, render_regions, RegionSummary};

/// Base virtual address used for application images, far from the kernel
/// (the kernel occupies low addresses; the exact distance only matters
/// modulo the cache size).
///
/// The offset within a cache frame is deliberately *not* zero: a real
/// program's hot code sits at an arbitrary offset, and a cache-aligned
/// base would make the synthetic application's hot loop (emitted first in
/// its image) alias exactly with the kernel's SelfConfFree area — an
/// alignment accident, not a property of any layout. 0x1800 (6 KB) keeps
/// the unoptimized application's hot code away from the bottom-of-cache
/// region for every cache size evaluated (4–32 KB) without matching
/// `OptA`'s deliberate opposite-side placement either.
pub const APP_BASE: u64 = 0x4000_1800;
