//! The paper's operating-system layout: `OptS` and `OptL` (Section 4).

use oslay_model::{BlockId, Program, WORD_BYTES};
use oslay_observe::{PlacementAudit, PlacementRecord};
use oslay_profile::{LoopAnalysis, Profile};

use crate::{build_sequences, Layout, LogicalCacheAllocator, SequenceSet, ThresholdSchedule};

/// Placement class of a block in an optimized layout — the categories of
/// the paper's Figure 13.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum BlockClass {
    /// Pulled into the SelfConfFree area (globally hottest blocks).
    SelfConfFree,
    /// In a sequence with `ExecThresh ≥ 0.01%`.
    MainSeq,
    /// In a less popular sequence.
    OtherSeq,
    /// Extracted into the loop area (OptL).
    Loop,
    /// Never executed; placed in SCF windows of other logical caches and
    /// after the hot region.
    Cold,
}

impl BlockClass {
    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BlockClass::SelfConfFree => "SelfConfFree",
            BlockClass::MainSeq => "MainSeq",
            BlockClass::OtherSeq => "OtherSeq",
            BlockClass::Loop => "Loops",
            BlockClass::Cold => "Cold",
        }
    }
}

/// Parameters of the OS layout optimization.
#[derive(Clone, Debug)]
pub struct OptParams {
    /// Target cache size in bytes (logical-cache granularity).
    pub cache_size: u32,
    /// SelfConfFree area budget in bytes: the globally hottest
    /// (loop-flattened) blocks are pulled out of the sequences and placed
    /// into the area, in order, until it fills (Section 4.2). `None`
    /// disables the area.
    ///
    /// The paper parameterizes this by an execution-frequency cut-off;
    /// cut-off and area size are in bijection on a given profile, and the
    /// paper reports its 3.0% / 2.0% / 1.0% cut-offs yield areas of
    /// 376 / 1286 / 2514 bytes, recommending "a 1-Kbyte SelfConfFree area
    /// for 4-16 Kbyte caches". The default budget is the paper's 2.0%
    /// area: 1286 bytes.
    pub scf_budget: Option<u32>,
    /// Threshold schedule for sequence construction.
    pub schedule: ThresholdSchedule,
    /// Extract loops with at least `min_loop_iters` iterations per
    /// invocation into a contiguous loop area (`OptL`, Section 4.3).
    pub extract_loops: bool,
    /// Minimum measured iterations per invocation for loop extraction
    /// (the paper uses 6).
    pub min_loop_iters: f64,
}

impl OptParams {
    /// `OptS`: sequences + SelfConfFree area, no loop extraction.
    #[must_use]
    pub fn opt_s(cache_size: u32) -> Self {
        Self {
            cache_size,
            scf_budget: Some(Self::PAPER_SCF_BYTES),
            schedule: ThresholdSchedule::paper(),
            extract_loops: false,
            min_loop_iters: 6.0,
        }
    }

    /// The paper's 2.0%-cut-off SelfConfFree area size (1286 bytes, "about
    /// 1 Kbyte").
    pub const PAPER_SCF_BYTES: u32 = 1286;

    /// `OptL`: `OptS` plus the simple loop optimization.
    #[must_use]
    pub fn opt_l(cache_size: u32) -> Self {
        Self {
            extract_loops: true,
            ..Self::opt_s(cache_size)
        }
    }

    /// Replaces the SCF budget (Figure 16's sweep: `None`, 376, 1286,
    /// 2514 bytes — the paper's 3.0% / 2.0% / 1.0% cut-off areas).
    #[must_use]
    pub fn with_scf_budget(mut self, budget: Option<u32>) -> Self {
        self.scf_budget = budget;
        self
    }
}

/// An optimized layout plus the per-block placement classes that the
/// evaluation's Figure 13 breakdown needs.
#[derive(Clone, Debug)]
pub struct OptLayout {
    /// The memory layout.
    pub layout: Layout,
    /// Placement class per block.
    pub classes: Vec<BlockClass>,
    /// Bytes reserved for the SelfConfFree area (0 when disabled).
    pub scf_bytes: u64,
    /// The sequences the layout was built from.
    pub sequences: SequenceSet,
    /// Per-block placement provenance in address order.
    pub audit: PlacementAudit,
}

impl OptLayout {
    /// The class of one block.
    #[must_use]
    pub fn class(&self, block: BlockId) -> BlockClass {
        self.classes[block.index()]
    }
}

/// Selects the SelfConfFree residents: the hottest loop-flattened blocks,
/// in order, until the byte budget fills. The budget is clamped to half
/// the cache size.
pub(crate) fn select_scf_blocks(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    budget: Option<u32>,
    cache_size: u32,
) -> (Vec<BlockId>, u64) {
    let Some(budget) = budget else {
        return (Vec::new(), 0);
    };
    let budget = u64::from(budget.min(cache_size / 2));
    let mut candidates: Vec<(f64, BlockId)> = profile
        .executed_blocks()
        .map(|b| (loops.flattened_weight(b, profile), b))
        .collect();
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut blocks = Vec::new();
    let mut bytes = 0u64;
    for (_, b) in candidates {
        let upper = u64::from(program.block(b).size() + WORD_BYTES);
        if bytes + upper > budget {
            break;
        }
        bytes += upper;
        blocks.push(b);
    }
    (blocks, bytes)
}

/// Builds the paper's optimized OS layout.
///
/// Steps (Sections 4.1–4.3): grow sequences under the descending threshold
/// schedule; pull the globally hottest (loop-flattened) blocks into the
/// SelfConfFree area at the bottom of logical cache 0; optionally extract
/// high-iteration loops into a loop area at the end of the sequences;
/// fill every other logical cache's SelfConfFree window, and the tail of
/// memory, with never-executed code.
///
/// # Panics
///
/// Panics only on internal errors (the construction places every block).
#[must_use]
pub fn optimize_os(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    params: &OptParams,
) -> OptLayout {
    let sequences = build_sequences(program, profile, &params.schedule);
    let mut classes = vec![BlockClass::Cold; program.num_blocks()];

    // --- SelfConfFree selection (Section 4.2) ---------------------------
    let (scf_blocks, scf_bytes) = select_scf_blocks(
        program,
        profile,
        loops,
        params.scf_budget,
        params.cache_size,
    );
    for &b in &scf_blocks {
        classes[b.index()] = BlockClass::SelfConfFree;
    }

    // --- Loop extraction (Section 4.3) ----------------------------------
    let mut loop_blocks: Vec<BlockId> = Vec::new();
    let mut in_loop_area = vec![false; program.num_blocks()];
    if params.extract_loops {
        for l in loops.executed_loops() {
            if l.iterations_per_entry() < params.min_loop_iters {
                continue;
            }
            for &b in &l.body {
                if profile.node_weight(b) == 0
                    || in_loop_area[b.index()]
                    || classes[b.index()] == BlockClass::SelfConfFree
                {
                    continue;
                }
                in_loop_area[b.index()] = true;
            }
        }
        // Keep the order the blocks had in the sequences ("in the same
        // order, in a contiguous area at the end of the sequences").
        for (_, b) in sequences.blocks_in_order() {
            if in_loop_area[b.index()] {
                loop_blocks.push(b);
                classes[b.index()] = BlockClass::Loop;
            }
        }
    }

    // --- Placement (Figure 10) -------------------------------------------
    let name = if params.extract_loops { "OptL" } else { "OptS" };
    let mut alloc = LogicalCacheAllocator::new(program, name, params.cache_size, scf_bytes);
    if !scf_blocks.is_empty() {
        alloc.place_scf(&scf_blocks);
    }
    for (seq_idx, b) in sequences.blocks_in_order() {
        if classes[b.index()] == BlockClass::SelfConfFree || in_loop_area[b.index()] {
            continue; // pulled out of the sequences
        }
        let seq = &sequences.sequences()[seq_idx];
        classes[b.index()] = if seq.exec_thresh >= ThresholdSchedule::MAIN_SEQ_EXEC_THRESH {
            BlockClass::MainSeq
        } else {
            BlockClass::OtherSeq
        };
        alloc.place_hot(b);
    }
    for &b in &loop_blocks {
        alloc.place_hot(b);
    }
    // Never-executed code: window fill first, then the tail.
    let cold: Vec<BlockId> = program
        .source_order()
        .filter(|&b| !sequences.contains(b))
        .collect();
    alloc.fill_cold(cold);

    let layout = alloc.finish().expect("optimized layout places all blocks");
    let audit = build_audit(
        name,
        &layout,
        &classes,
        &sequences,
        &params.schedule,
        scf_bytes,
        u64::from(params.cache_size),
    );
    OptLayout {
        layout,
        classes,
        scf_bytes,
        sequences,
        audit,
    }
}

/// Derives the audit trail from the finished layout: every block gets a
/// record in address order carrying its area and, when a sequence
/// adopted it, the seed, pass (threshold rung), sequence index, and the
/// rung's `(ExecThresh, BranchThresh)` pair. Shared with the `Call`
/// layout, which produces the same class vocabulary.
pub(crate) fn build_audit(
    name: &str,
    layout: &Layout,
    classes: &[BlockClass],
    sequences: &SequenceSet,
    schedule: &ThresholdSchedule,
    scf_bytes: u64,
    cache_size: u64,
) -> PlacementAudit {
    let mut seq_of: Vec<Option<usize>> = vec![None; classes.len()];
    for (seq_idx, b) in sequences.blocks_in_order() {
        seq_of[b.index()] = Some(seq_idx);
    }
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by_key(|&i| layout.addr(BlockId::new(i)));

    let mut audit = PlacementAudit::new(name);
    for i in order {
        let addr = layout.addr(BlockId::new(i));
        let area = match classes[i] {
            BlockClass::SelfConfFree => "self_conf_free",
            BlockClass::MainSeq => "main_seq",
            BlockClass::OtherSeq => "other_seq",
            BlockClass::Loop => "loop_area",
            BlockClass::Cold => {
                // Cold code either plugs an SCF window of a later logical
                // cache or trails the hot region.
                if addr >= cache_size && addr % cache_size < scf_bytes {
                    "cold_window"
                } else {
                    "cold_tail"
                }
            }
        };
        let mut rec = PlacementRecord::area_only(i, addr, area);
        if let Some(seq_idx) = seq_of[i] {
            let seq = &sequences.sequences()[seq_idx];
            rec.seed = Some(seq.seed.to_string());
            rec.pass = Some(seq.pass);
            rec.sequence = Some(seq_idx);
            rec.exec_thresh = Some(seq.exec_thresh);
            rec.branch_thresh = schedule
                .passes
                .get(seq.pass)
                .and_then(|p| p.branch[seq.seed.index()]);
        }
        audit.record(rec);
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile, LoopAnalysis) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 99));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(8)).run(60_000);
        let p = Profile::collect(&k.program, &t);
        let la = LoopAnalysis::analyze(&k.program, &p);
        (k.program, p, la)
    }

    #[test]
    fn opts_layout_is_valid_and_complete() {
        let (program, profile, loops) = setup();
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192));
        assert_eq!(opt.layout.num_blocks(), program.num_blocks());
        assert_eq!(opt.layout.name(), "OptS");
    }

    #[test]
    fn scf_blocks_are_the_hottest_and_sit_low() {
        let (program, profile, loops) = setup();
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192));
        let scf: Vec<BlockId> = (0..program.num_blocks())
            .map(BlockId::new)
            .filter(|&b| opt.class(b) == BlockClass::SelfConfFree)
            .collect();
        assert!(!scf.is_empty(), "expected a nonempty SCF area");
        for &b in &scf {
            assert!(opt.layout.addr(b) < opt.scf_bytes);
        }
        // No non-SCF executed block may share SCF cache offsets.
        for b in profile.executed_blocks() {
            if opt.class(b) == BlockClass::SelfConfFree {
                continue;
            }
            let offset = opt.layout.addr(b) % 8192;
            assert!(
                offset >= opt.scf_bytes,
                "executed block {b} ({:?}) at SCF offset {offset}",
                opt.class(b)
            );
        }
    }

    #[test]
    fn cold_code_fills_other_windows() {
        let (program, profile, loops) = setup();
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192));
        let any_cold_in_window = (0..program.num_blocks()).map(BlockId::new).any(|b| {
            opt.class(b) == BlockClass::Cold
                && opt.layout.addr(b) >= 8192
                && opt.layout.addr(b) % 8192 < opt.scf_bytes
        });
        assert!(
            any_cold_in_window,
            "SCF windows of later logical caches should hold cold code"
        );
    }

    #[test]
    fn optl_extracts_loop_blocks_after_sequences() {
        let (program, profile, loops) = setup();
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_l(8192));
        assert_eq!(opt.layout.name(), "OptL");
        let loop_blocks: Vec<BlockId> = (0..program.num_blocks())
            .map(BlockId::new)
            .filter(|&b| opt.class(b) == BlockClass::Loop)
            .collect();
        assert!(!loop_blocks.is_empty(), "expected extracted loops (bzero)");
        // Loop area comes after every sequence block.
        let max_seq = (0..program.num_blocks())
            .map(BlockId::new)
            .filter(|&b| matches!(opt.class(b), BlockClass::MainSeq | BlockClass::OtherSeq))
            .map(|b| opt.layout.addr(b))
            .max()
            .unwrap();
        let min_loop = loop_blocks
            .iter()
            .map(|&b| opt.layout.addr(b))
            .min()
            .unwrap();
        assert!(
            min_loop > max_seq,
            "loop area ({min_loop}) must follow sequences ({max_seq})"
        );
    }

    #[test]
    fn no_scf_budget_means_no_scf_area() {
        let (program, profile, loops) = setup();
        let params = OptParams::opt_s(8192).with_scf_budget(None);
        let opt = optimize_os(&program, &profile, &loops, &params);
        assert_eq!(opt.scf_bytes, 0);
        assert!((0..program.num_blocks())
            .map(BlockId::new)
            .all(|b| opt.class(b) != BlockClass::SelfConfFree));
    }

    #[test]
    fn larger_budget_gives_larger_scf() {
        let (program, profile, loops) = setup();
        let a = optimize_os(
            &program,
            &profile,
            &loops,
            &OptParams::opt_s(8192).with_scf_budget(Some(2514)),
        );
        let b = optimize_os(
            &program,
            &profile,
            &loops,
            &OptParams::opt_s(8192).with_scf_budget(Some(376)),
        );
        assert!(a.scf_bytes >= b.scf_bytes);
    }

    #[test]
    fn executed_blocks_are_never_cold_class() {
        let (program, profile, loops) = setup();
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192));
        for b in profile.executed_blocks() {
            assert_ne!(opt.class(b), BlockClass::Cold, "executed block {b} cold");
        }
    }

    #[test]
    fn deterministic() {
        let (program, profile, loops) = setup();
        let a = optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192));
        let b = optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192));
        assert_eq!(a.layout, b.layout);
        assert_eq!(a.audit, b.audit);
    }

    #[test]
    fn audit_matches_classes_and_layout() {
        let (program, profile, loops) = setup();
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_l(8192));
        assert_eq!(opt.audit.len(), program.num_blocks(), "every block audited");
        assert_eq!(opt.audit.pass_name(), "OptL");
        for (id, _) in program.blocks() {
            let rec = opt.audit.lookup(id.index()).expect("record per block");
            assert_eq!(rec.addr, opt.layout.addr(id));
            let expected_areas: &[&str] = match opt.class(id) {
                BlockClass::SelfConfFree => &["self_conf_free"],
                BlockClass::MainSeq => &["main_seq"],
                BlockClass::OtherSeq => &["other_seq"],
                BlockClass::Loop => &["loop_area"],
                BlockClass::Cold => &["cold_window", "cold_tail"],
            };
            assert!(
                expected_areas.contains(&rec.area.as_str()),
                "block {id}: area {} vs class {:?}",
                rec.area,
                opt.class(id)
            );
        }
        // Sequence blocks carry full rung provenance.
        let seq_rec = opt
            .audit
            .records()
            .iter()
            .find(|r| r.area == "main_seq")
            .expect("some main-sequence block");
        assert!(seq_rec.seed.is_some());
        assert!(seq_rec.pass.is_some());
        assert!(seq_rec.sequence.is_some());
        assert!(seq_rec.exec_thresh.is_some());
        assert!(seq_rec.branch_thresh.is_some());
        // Cold fill used at least one later window (same setup as
        // cold_code_fills_other_windows).
        assert!(opt.audit.area_count("cold_window") > 0);
    }
}
