//! The advanced loops-with-callees optimization (`Call`, Section 4.4).
//!
//! Idea: a loop that calls routines should be placed so that the loop body
//! and every routine it (transitively) calls never conflict in the cache —
//! then all misses are confined to the first iteration. Each qualifying
//! loop gets its own *logical cache*; a **conflict matrix** (loops ×
//! routines, capped at the 50 most invoked routines) drives the placement
//! of shared callees: a routine called by two loops is placed at an offset
//! left free in *both* loops' logical caches, and the non-host logical
//! cache keeps a same-sized gap filled with rarely-executed code.
//!
//! The paper implements this, measures it, and **rejects** it: the callee
//! routines pulled out of the sequences lose spatial locality, and the
//! loops iterate too few times for the saved conflicts to pay for it
//! (Figure 18, `Call` bars, 20–100% more OS misses than `OptA`). The
//! reproduction includes it to regenerate that negative result.

use std::collections::{BTreeMap, BTreeSet};

use oslay_model::{BlockId, Program, RoutineId, Terminator, WORD_BYTES};
use oslay_profile::{CallGraph, LoopAnalysis, Profile};

use crate::{build_sequences, BlockClass, LogicalCacheAllocator, OptLayout, ThresholdSchedule};

/// Parameters of the Section 4.4 optimization.
#[derive(Clone, Debug)]
pub struct CallOptParams {
    /// Target cache size in bytes.
    pub cache_size: u32,
    /// SelfConfFree byte budget, as in [`crate::OptParams`].
    pub scf_budget: Option<u32>,
    /// Threshold schedule for the sequences.
    pub schedule: ThresholdSchedule,
    /// Minimum measured iterations per invocation for a loop to qualify
    /// (the paper uses 6).
    pub min_loop_iters: f64,
    /// Maximum number of routines kept in the conflict matrix (the paper
    /// keeps 50).
    pub max_matrix_routines: usize,
}

impl CallOptParams {
    /// Paper defaults for a given cache size.
    #[must_use]
    pub fn new(cache_size: u32) -> Self {
        Self {
            cache_size,
            scf_budget: Some(crate::OptParams::PAPER_SCF_BYTES),
            schedule: ThresholdSchedule::paper(),
            min_loop_iters: 6.0,
            max_matrix_routines: 50,
        }
    }
}

struct LoopPlan {
    /// Executed body blocks, in sequence order (filled later).
    blocks: Vec<BlockId>,
    /// Free offset within this loop's logical cache (grows as callees are
    /// placed).
    free: u64,
}

/// Builds the `Call` layout: OptS plus per-loop logical caches for loops
/// with callees.
///
/// # Panics
///
/// Panics only on internal errors.
#[must_use]
pub fn call_opt_layout(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    params: &CallOptParams,
) -> OptLayout {
    let cache = u64::from(params.cache_size);
    let sequences = build_sequences(program, profile, &params.schedule);
    let call_graph = CallGraph::compute(program, profile);
    let mut classes = vec![BlockClass::Cold; program.num_blocks()];

    // --- SelfConfFree selection (same rule as OptS) ----------------------
    let (scf_blocks, scf_bytes) = crate::opts::select_scf_blocks(
        program,
        profile,
        loops,
        params.scf_budget,
        params.cache_size,
    );
    for &b in &scf_blocks {
        classes[b.index()] = BlockClass::SelfConfFree;
    }

    // --- Qualifying loops and the conflict matrix ------------------------
    let mut extracted = vec![false; program.num_blocks()];
    for &b in &scf_blocks {
        extracted[b.index()] = true;
    }
    let qualifying: Vec<&oslay_profile::NaturalLoop> = loops
        .executed_loops()
        .filter(|l| l.has_calls && l.iterations_per_entry() >= params.min_loop_iters)
        .collect();

    let mut plans: Vec<LoopPlan> = Vec::new();
    // routine → loop indices that call it (the conflict matrix).
    let mut matrix: BTreeMap<RoutineId, BTreeSet<usize>> = BTreeMap::new();
    for l in &qualifying {
        let idx = plans.len();
        let mut bytes = 0u64;
        for &b in &l.body {
            if profile.node_weight(b) > 0 && !extracted[b.index()] {
                bytes += u64::from(program.block(b).size() + WORD_BYTES);
            }
        }
        plans.push(LoopPlan {
            blocks: Vec::new(),
            free: scf_bytes + bytes,
        });
        // Direct callees of the loop body, then their executed closure.
        let callees: Vec<RoutineId> = l
            .body
            .iter()
            .filter_map(|&b| match program.block(b).terminator() {
                Terminator::Call { callee, .. } if profile.node_weight(b) > 0 => Some(*callee),
                _ => None,
            })
            .collect();
        for r in call_graph.executed_closure(&callees) {
            matrix.entry(r).or_default().insert(idx);
        }
    }

    // Keep only the most invoked routines (the paper trims the matrix to
    // 50 rows).
    let mut ranked: Vec<(RoutineId, u64)> = matrix
        .keys()
        .map(|&r| (r, profile.routine_invocations(r)))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(params.max_matrix_routines);

    // Plan routine placements: (routine, host loop, offset in chunk).
    // Every extracted block is assigned to exactly one placement list (a
    // routine slot or a loop plan) the moment it is marked, so overlapping
    // loop bodies or a loop whose own routine sits in the conflict matrix
    // cannot be placed twice.
    let mut routine_slots: Vec<(RoutineId, usize, u64)> = Vec::new();
    let mut slot_blocks: Vec<Vec<BlockId>> = Vec::new();
    // Gap ranges (loop index, offset range) for cold fill.
    let mut gaps: Vec<(usize, std::ops::Range<u64>)> = Vec::new();
    for &(routine, _) in &ranked {
        let callers: Vec<usize> = matrix[&routine].iter().copied().collect();
        if callers.is_empty() {
            continue;
        }
        let exec_bytes: u64 = program
            .routine(routine)
            .blocks()
            .iter()
            .filter(|&&b| profile.node_weight(b) > 0 && !extracted[b.index()])
            .map(|&b| u64::from(program.block(b).size() + WORD_BYTES))
            .sum();
        if exec_bytes == 0 {
            continue;
        }
        let offset = callers
            .iter()
            .map(|&c| plans[c].free)
            .max()
            .expect("nonempty callers");
        if offset + exec_bytes > cache {
            // The logical cache is full; leave this routine in the
            // sequences.
            continue;
        }
        // Host: the caller loop with the most head executions.
        let host = callers
            .iter()
            .copied()
            .max_by_key(|&c| qualifying[c].head_executions)
            .expect("nonempty callers");
        for &c in &callers {
            if c != host && plans[c].free < offset + exec_bytes {
                gaps.push((c, plans[c].free..offset + exec_bytes));
            }
            if c == host && plans[c].free < offset {
                gaps.push((c, plans[c].free..offset));
            }
            plans[c].free = offset + exec_bytes;
        }
        let mut blocks = Vec::new();
        for &b in program.routine(routine).blocks() {
            if profile.node_weight(b) > 0 && !extracted[b.index()] {
                extracted[b.index()] = true;
                classes[b.index()] = BlockClass::Loop;
                blocks.push(b);
            }
        }
        routine_slots.push((routine, host, offset));
        slot_blocks.push(blocks);
    }
    // The loop bodies themselves; blocks already claimed by a routine slot
    // (or by an overlapping earlier loop) stay where they were assigned.
    for (plan, l) in plans.iter_mut().zip(&qualifying) {
        for &b in &l.body {
            if profile.node_weight(b) > 0 && !extracted[b.index()] {
                extracted[b.index()] = true;
                classes[b.index()] = BlockClass::Loop;
                plan.blocks.push(b);
            }
        }
    }

    // --- Placement --------------------------------------------------------
    let mut alloc = LogicalCacheAllocator::new(program, "Call", params.cache_size, scf_bytes);
    if !scf_blocks.is_empty() {
        alloc.place_scf(&scf_blocks);
    }
    for (seq_idx, b) in sequences.blocks_in_order() {
        if extracted[b.index()] {
            continue;
        }
        let seq = &sequences.sequences()[seq_idx];
        classes[b.index()] = if seq.exec_thresh >= ThresholdSchedule::MAIN_SEQ_EXEC_THRESH {
            BlockClass::MainSeq
        } else {
            BlockClass::OtherSeq
        };
        alloc.place_hot(b);
    }

    // Per-loop logical caches after the sequence region.
    let chunk0 = alloc.next_chunk_base();
    let chunk_base = |idx: usize| chunk0 + idx as u64 * cache;
    let mut high_water = alloc.hot_end();
    for (idx, plan) in plans.iter().enumerate() {
        let base = chunk_base(idx);
        // The chunk's own SCF window must stay conflict-free w.r.t. the
        // real SCF area: reserve it for cold fill.
        if scf_bytes > 0 {
            alloc.add_cold_window(base..base + scf_bytes);
        }
        let mut pos = base + scf_bytes;
        for &b in &plan.blocks {
            alloc.builder_mut().place_at(b, pos);
            pos += u64::from(program.block(b).size() + WORD_BYTES);
        }
        high_water = high_water.max(pos);
    }
    for ((_, host, offset), blocks) in routine_slots.iter().zip(&slot_blocks) {
        let mut pos = chunk_base(*host) + offset;
        for &b in blocks {
            alloc.builder_mut().place_at(b, pos);
            pos += u64::from(program.block(b).size() + WORD_BYTES);
        }
        high_water = high_water.max(pos);
    }
    // Gaps in non-host chunks become cold windows.
    for (idx, range) in gaps {
        let base = chunk_base(idx);
        alloc.add_cold_window(base + range.start..base + range.end);
        high_water = high_water.max(base + range.end);
    }

    let cold: Vec<BlockId> = program
        .source_order()
        .filter(|&b| !sequences.contains(b))
        .collect();
    alloc.fill_cold_from(high_water, cold);

    let layout = alloc.finish().expect("Call layout places all blocks");
    let audit = crate::opts::build_audit(
        "Call",
        &layout,
        &classes,
        &sequences,
        &params.schedule,
        scf_bytes,
        cache,
    );
    OptLayout {
        layout,
        classes,
        scf_bytes,
        sequences,
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile, LoopAnalysis) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 123));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(10)).run(80_000);
        let p = Profile::collect(&k.program, &t);
        let la = LoopAnalysis::analyze(&k.program, &p);
        (k.program, p, la)
    }

    #[test]
    fn call_layout_is_complete() {
        let (program, profile, loops) = setup();
        let opt = call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192));
        assert_eq!(opt.layout.num_blocks(), program.num_blocks());
        assert_eq!(opt.layout.name(), "Call");
    }

    #[test]
    fn loop_class_blocks_live_in_dedicated_chunks_or_sequences_end() {
        let (program, profile, loops) = setup();
        let opt = call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192));
        // Extracted blocks (class Loop) must all sit above the last
        // sequence block.
        let seq_max = (0..program.num_blocks())
            .map(BlockId::new)
            .filter(|&b| matches!(opt.class(b), BlockClass::MainSeq | BlockClass::OtherSeq))
            .map(|b| opt.layout.addr(b))
            .max();
        let loop_min = (0..program.num_blocks())
            .map(BlockId::new)
            .filter(|&b| opt.class(b) == BlockClass::Loop)
            .map(|b| opt.layout.addr(b))
            .min();
        if let (Some(seq_max), Some(loop_min)) = (seq_max, loop_min) {
            assert!(loop_min > seq_max, "chunks must follow sequences");
        }
    }

    #[test]
    fn scf_area_is_still_protected() {
        let (program, profile, loops) = setup();
        let opt = call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192));
        if opt.scf_bytes == 0 {
            return;
        }
        for b in profile.executed_blocks() {
            if opt.class(b) == BlockClass::SelfConfFree {
                assert!(opt.layout.addr(b) < opt.scf_bytes);
            } else {
                let offset = opt.layout.addr(b) % 8192;
                assert!(
                    offset >= opt.scf_bytes,
                    "executed block {b} ({:?}) at protected offset {offset}",
                    opt.class(b)
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let (program, profile, loops) = setup();
        let a = call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192));
        let b = call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192));
        assert_eq!(a.layout, b.layout);
    }
}
