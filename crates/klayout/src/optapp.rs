//! Application-side layout for `OptA` (Section 5.1).
//!
//! "For the applications, we do not set up any SelfConfFree area because
//! the behavior can vary widely among applications. Furthermore, we use
//! the `main` function as the seed to generate sequences, and place the
//! sequences in the cache starting from the side opposite to that used for
//! the operating system." The application also receives the simple loop
//! optimization of Section 4.3.

use oslay_model::{BlockId, Domain, Program};
use oslay_observe::{PlacementAudit, PlacementRecord};
use oslay_profile::{LoopAnalysis, Profile};

use crate::{build_sequences, Layout, LayoutBuilder, ThresholdSchedule, APP_BASE};

/// Builds the optimized application layout.
///
/// "The side opposite to that used for the operating system": the kernel's
/// hottest code sits at the *bottom* of each cache frame (SelfConfFree
/// area, then the first sequences, in decreasing heat), so the
/// application's hot region is placed to occupy the *top* of a frame — its
/// base offset is chosen so the sequences-plus-loop-area region ends
/// exactly at a cache-size boundary. When the hot region exceeds one cache
/// frame this wraps and the choice matters less, exactly as in the paper.
///
/// # Panics
///
/// Panics if `program` is not an application program.
#[must_use]
pub fn optimize_app(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    cache_size: u32,
) -> Layout {
    optimize_app_audited(program, profile, loops, cache_size).0
}

/// Like [`optimize_app`], but also returns the placement audit:
/// sequence blocks get `main_seq`/`other_seq` areas (all grown from the
/// `main` seed) with their capturing rung's thresholds, extracted loop
/// bodies `loop_area`, and never-executed code `source_order`.
///
/// # Panics
///
/// Panics if `program` is not an application program.
#[must_use]
pub fn optimize_app_audited(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    cache_size: u32,
) -> (Layout, PlacementAudit) {
    assert_eq!(
        program.domain(),
        Domain::App,
        "optimize_app requires an application program"
    );
    let schedule = ThresholdSchedule::paper();
    let sequences = build_sequences(program, profile, &schedule);

    // Loop extraction (Section 4.3), as in OptL: loops with ≥ 6 measured
    // iterations per invocation move to a loop area after the sequences.
    let mut in_loop_area = vec![false; program.num_blocks()];
    for l in loops.executed_loops() {
        if l.iterations_per_entry() < 6.0 {
            continue;
        }
        for &b in &l.body {
            if profile.node_weight(b) > 0 {
                in_loop_area[b.index()] = true;
            }
        }
    }

    // Estimate the hot region (sequences + loop area) including a
    // conservative stretch word per block, then align its END to a cache
    // frame boundary: the hot code fills the top of the frame.
    let hot_bytes: u64 = sequences
        .blocks_in_order()
        .map(|(_, b)| u64::from(program.block(b).size() + oslay_model::WORD_BYTES))
        .sum();
    let cache = u64::from(cache_size);
    let app_frame = APP_BASE / cache * cache; // cache-aligned app region base
    let offset = (cache - (hot_bytes % cache)) % cache;
    let base = app_frame + offset;
    let mut lb = LayoutBuilder::new(program, "OptA-app", base);
    for (_, b) in sequences.blocks_in_order() {
        if !in_loop_area[b.index()] {
            lb.place(b);
        }
    }
    let mut loop_blocks: Vec<BlockId> = Vec::new();
    for (_, b) in sequences.blocks_in_order() {
        if in_loop_area[b.index()] {
            loop_blocks.push(b);
            lb.place(b);
        }
    }
    for b in program.source_order() {
        if !sequences.contains(b) {
            lb.place(b);
        }
    }
    let layout = lb.finish().expect("application layout places every block");

    let mut audit = PlacementAudit::new("OptA-app");
    let mut order: Vec<BlockId> = (0..program.num_blocks()).map(BlockId::new).collect();
    order.sort_by_key(|&b| layout.addr(b));
    let mut seq_of: Vec<Option<usize>> = vec![None; program.num_blocks()];
    for (seq_idx, b) in sequences.blocks_in_order() {
        seq_of[b.index()] = Some(seq_idx);
    }
    for b in order {
        let area = if in_loop_area[b.index()] && sequences.contains(b) {
            "loop_area"
        } else if let Some(seq_idx) = seq_of[b.index()] {
            let seq = &sequences.sequences()[seq_idx];
            if seq.exec_thresh >= ThresholdSchedule::MAIN_SEQ_EXEC_THRESH {
                "main_seq"
            } else {
                "other_seq"
            }
        } else {
            "source_order"
        };
        let mut rec = PlacementRecord::area_only(b.index(), layout.addr(b), area);
        if let Some(seq_idx) = seq_of[b.index()] {
            let seq = &sequences.sequences()[seq_idx];
            // Application sequences all grow from `main`, not a kernel
            // seed kind.
            rec.seed = Some("main".to_owned());
            rec.pass = Some(seq.pass);
            rec.sequence = Some(seq_idx);
            rec.exec_thresh = Some(seq.exec_thresh);
            rec.branch_thresh = schedule
                .passes
                .get(seq.pass)
                .and_then(|p| p.branch[seq.seed.index()]);
        }
        audit.record(rec);
    }
    (layout, audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_app_mix, AppParams};
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig, StandardWorkload};

    fn setup() -> (Program, Profile, LoopAnalysis) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 31));
        let specs = standard_workloads(&k.tables);
        let app = generate_app_mix(
            &StandardWorkload::TrfdMake.app_components(),
            &AppParams::new(5).with_scale(0.25),
        );
        let t = Engine::new(&k.program, Some(&app), &specs[1], EngineConfig::new(9)).run(40_000);
        let p = Profile::collect(&app, &t);
        let la = LoopAnalysis::analyze(&app, &p);
        (app, p, la)
    }

    #[test]
    fn app_layout_is_complete_and_offset() {
        let (app, profile, loops) = setup();
        let l = optimize_app(&app, &profile, &loops, 8192);
        assert_eq!(l.num_blocks(), app.num_blocks());
        let app_frame = APP_BASE / 8192 * 8192;
        for (id, _) in app.blocks() {
            assert!(l.addr(id) >= app_frame, "app block below the app region");
        }
    }

    #[test]
    fn hot_code_starts_on_the_opposite_cache_side() {
        let (app, profile, loops) = setup();
        let l = optimize_app(&app, &profile, &loops, 8192);
        let hottest = profile
            .executed_blocks()
            .max_by_key(|&b| profile.node_weight(b))
            .unwrap();
        let offset = l.addr(hottest) % 8192;
        // The kernel's hottest code lives at low cache offsets; the app's
        // must not (it starts at cache_size/2). Loop-heavy scientific code
        // extracts its hot loops to the loop area right after the (small)
        // sequence region, so anywhere in the upper half is acceptable.
        assert!(
            offset >= 2048,
            "hottest app block at offset {offset} collides with kernel hot side"
        );
    }

    #[test]
    fn extracted_loops_follow_sequences() {
        let (app, profile, loops) = setup();
        let l = optimize_app(&app, &profile, &loops, 8192);
        // The scientific inner loop iterates far more than 6 times, so it
        // must be in the loop area — after at least one non-loop hot
        // block.
        let inner = app.routine_by_name("sci0_dgemm_inner").unwrap();
        let head = inner.entry();
        if profile.node_weight(head) > 0 {
            let seq_min = profile
                .executed_blocks()
                .filter(|&b| b != head)
                .map(|b| l.addr(b))
                .min()
                .unwrap();
            assert!(l.addr(head) > seq_min);
        }
    }

    #[test]
    fn audit_records_app_provenance() {
        let (app, profile, loops) = setup();
        let (layout, audit) = optimize_app_audited(&app, &profile, &loops, 8192);
        assert_eq!(audit.len(), app.num_blocks());
        assert_eq!(audit.pass_name(), "OptA-app");
        for (id, _) in app.blocks() {
            let rec = audit.lookup(id.index()).expect("record per block");
            assert_eq!(rec.addr, layout.addr(id));
        }
        // The scientific loop body must be audited as loop-area code with
        // main-seeded provenance.
        assert!(audit.area_count("loop_area") > 0, "loops extracted");
        let loop_rec = audit
            .records()
            .iter()
            .find(|r| r.area == "loop_area")
            .unwrap();
        assert_eq!(loop_rec.seed.as_deref(), Some("main"));
        assert!(loop_rec.exec_thresh.is_some());
        // Cold app code is appended in source order.
        assert!(audit.area_count("source_order") > 0);
    }

    #[test]
    #[should_panic(expected = "requires an application")]
    fn kernel_program_is_rejected() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 31));
        let profile = Profile::empty(&k.program);
        let la = LoopAnalysis::analyze(&k.program, &profile);
        let _ = optimize_app(&k.program, &profile, &la, 8192);
    }
}
