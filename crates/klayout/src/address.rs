//! Mapping block-level traces to instruction-fetch address streams.
//!
//! A trace is layout-independent; a [`Layout`] pair (kernel + optional
//! application) turns it into the word-granular address stream a cache
//! sees. This is the glue every evaluation drives through; exposing it as
//! an iterator keeps downstream replay loops trivial:
//!
//! ```
//! # use oslay_model::synth::{generate_kernel, KernelParams, Scale};
//! # use oslay_trace::{standard_workloads, Engine, EngineConfig};
//! # use oslay_layout::{base_layout, fetch_stream};
//! # let kernel = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 1));
//! # let specs = standard_workloads(&kernel.tables);
//! # let trace = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(1)).run(500);
//! let layout = base_layout(&kernel.program, 0);
//! let fetches = fetch_stream(trace.events(), &layout, None).count();
//! assert!(fetches as u64 > trace.os_blocks());
//! ```

use oslay_model::{Domain, WORD_BYTES};
use oslay_trace::TraceEvent;

use crate::Layout;

/// Iterator over `(address, domain)` instruction-word fetches.
///
/// Produced by [`fetch_stream`].
#[derive(Debug)]
pub struct FetchStream<'a> {
    events: std::slice::Iter<'a, TraceEvent>,
    os: &'a Layout,
    app: Option<&'a Layout>,
    /// Remaining words of the current block: (next address, words left,
    /// domain).
    current: Option<(u64, u32, Domain)>,
}

impl Iterator for FetchStream<'_> {
    type Item = (u64, Domain);

    fn next(&mut self) -> Option<(u64, Domain)> {
        loop {
            if let Some((addr, left, domain)) = self.current {
                if left > 0 {
                    self.current = Some((addr + u64::from(WORD_BYTES), left - 1, domain));
                    return Some((addr, domain));
                }
                self.current = None;
            }
            let event = self.events.next()?;
            if let TraceEvent::Block { id, domain } = *event {
                let layout = match domain {
                    Domain::Os => self.os,
                    Domain::App => self
                        .app
                        .expect("trace contains app blocks but no app layout was supplied"),
                };
                self.current = Some((layout.addr(id), layout.fetch_words(id), domain));
            }
        }
    }
}

/// Maps a block-level trace to its instruction-fetch address stream under
/// the given layouts.
///
/// # Panics
///
/// The returned iterator panics if the trace contains application blocks
/// and `app` is `None`.
#[must_use]
pub fn fetch_stream<'a>(
    events: &'a [TraceEvent],
    os: &'a Layout,
    app: Option<&'a Layout>,
) -> FetchStream<'a> {
    FetchStream {
        events: events.iter(),
        os,
        app,
        current: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_layout;
    use oslay_model::fetch_words;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (oslay_model::Program, oslay_trace::Trace) {
        let kernel = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 5));
        let specs = standard_workloads(&kernel.tables);
        let trace = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(2)).run(2_000);
        (kernel.program, trace)
    }

    #[test]
    fn stream_length_matches_per_block_word_counts() {
        let (program, trace) = setup();
        let layout = base_layout(&program, 0);
        let expected: u64 = trace
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Block { id, .. } => {
                    Some(u64::from(fetch_words(program.block(id).size())))
                }
                _ => None,
            })
            .sum();
        let got = fetch_stream(trace.events(), &layout, None).count() as u64;
        assert_eq!(got, expected);
    }

    #[test]
    fn addresses_are_word_aligned_and_within_blocks() {
        let (program, trace) = setup();
        let layout = base_layout(&program, 0);
        // Block start addresses are byte-granular (the 68020-style code
        // is not word-aligned), but all fetches stay inside the image and
        // in the OS domain for an OS-only trace.
        for (addr, domain) in fetch_stream(trace.events(), &layout, None).take(10_000) {
            assert_eq!(domain, Domain::Os);
            assert!(addr < layout.span_end());
        }
    }

    #[test]
    fn consecutive_words_of_a_block_are_contiguous() {
        let (program, trace) = setup();
        let layout = base_layout(&program, 0);
        // Find the first multi-word block event and check its words.
        let mut stream = fetch_stream(trace.events(), &layout, None);
        let first_block = trace.events().iter().find_map(|e| match *e {
            TraceEvent::Block { id, .. } if layout.fetch_words(id) > 1 => Some(id),
            _ => None,
        });
        if let Some(id) = first_block {
            // Skip until the block's first address appears.
            let base = layout.addr(id);
            let words = layout.fetch_words(id);
            let mut found = false;
            while let Some((addr, _)) = stream.next() {
                if addr == base {
                    for w in 1..words {
                        let (next, _) = stream.next().unwrap();
                        assert_eq!(next, base + u64::from(w * WORD_BYTES));
                    }
                    found = true;
                    break;
                }
            }
            assert!(found, "block start address never fetched");
        }
    }
}
