//! Region-level summaries of optimized layouts (the paper's Figure 10).
//!
//! Figure 10 is a diagram: SelfConfFree area at the bottom of logical
//! cache 0, sequences above it skipping the other logical caches' windows,
//! the loop area at the end of the sequences, seldom-executed code in the
//! windows and the tail. [`layout_regions`] recovers that diagram from an
//! actual [`OptLayout`] by merging address-consecutive blocks of the same
//! placement class, so the figure can be *printed from the data* rather
//! than drawn.

use oslay_model::{BlockId, Program};

use crate::{BlockClass, OptLayout};

/// One contiguous region of same-class code in a layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionSummary {
    /// Placement class of every block in the region.
    pub class: BlockClass,
    /// First byte of the region.
    pub start: u64,
    /// One past the last byte of the region's last block.
    pub end: u64,
    /// Number of blocks.
    pub blocks: usize,
}

impl RegionSummary {
    /// Region size in bytes (including internal padding).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.end - self.start
    }
}

/// Decomposes an optimized layout into address-ordered regions of
/// constant placement class.
#[must_use]
pub fn layout_regions(program: &Program, opt: &OptLayout) -> Vec<RegionSummary> {
    let mut blocks: Vec<BlockId> = (0..program.num_blocks()).map(BlockId::new).collect();
    blocks.sort_by_key(|&b| opt.layout.addr(b));

    let mut regions: Vec<RegionSummary> = Vec::new();
    for b in blocks {
        let class = opt.class(b);
        let start = opt.layout.addr(b);
        let end = start + u64::from(opt.layout.effective_size(b));
        match regions.last_mut() {
            Some(last) if last.class == class => {
                last.end = end;
                last.blocks += 1;
            }
            _ => regions.push(RegionSummary {
                class,
                start,
                end,
                blocks: 1,
            }),
        }
    }
    regions
}

/// Renders the region list as a memory-map table (low addresses first),
/// collapsing regions smaller than `min_bytes` into their neighbours'
/// rows is left to the caller; every region is printed.
#[must_use]
pub fn render_regions(regions: &[RegionSummary]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10}  {:>10}  {:>8}  {:>6}  class",
        "start", "end", "bytes", "blocks"
    );
    for r in regions {
        let _ = writeln!(
            out,
            "{:>#10x}  {:>#10x}  {:>8}  {:>6}  {}",
            r.start,
            r.end,
            r.bytes(),
            r.blocks,
            r.class.label()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize_os, OptParams};
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_profile::{LoopAnalysis, Profile};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn opt() -> (oslay_model::Program, OptLayout) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 9));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(3)).run(40_000);
        let p = Profile::collect(&k.program, &t);
        let la = LoopAnalysis::analyze(&k.program, &p);
        let opt = optimize_os(&k.program, &p, &la, &OptParams::opt_l(4096));
        (k.program, opt)
    }

    #[test]
    fn regions_cover_all_blocks_in_order() {
        let (program, opt) = opt();
        let regions = layout_regions(&program, &opt);
        let total: usize = regions.iter().map(|r| r.blocks).sum();
        assert_eq!(total, program.num_blocks());
        for pair in regions.windows(2) {
            assert!(pair[0].end <= pair[1].start, "regions out of order");
            assert_ne!(pair[0].class, pair[1].class, "unmerged neighbours");
        }
    }

    #[test]
    fn figure_10_structure_is_present() {
        let (program, opt) = opt();
        let regions = layout_regions(&program, &opt);
        // The first region is the SelfConfFree area at address 0.
        assert_eq!(regions[0].class, BlockClass::SelfConfFree);
        assert_eq!(regions[0].start, 0);
        // Sequences follow; a loop area exists (OptL); cold code is
        // interleaved (SCF windows) and dominates the tail.
        assert!(regions.iter().any(|r| r.class == BlockClass::MainSeq));
        assert!(regions.iter().any(|r| r.class == BlockClass::Loop));
        assert_eq!(regions.last().unwrap().class, BlockClass::Cold);
        let _ = program;
    }

    #[test]
    fn render_lists_every_region() {
        let (program, opt) = opt();
        let regions = layout_regions(&program, &opt);
        let text = render_regions(&regions);
        assert_eq!(text.lines().count(), regions.len() + 1);
        assert!(text.contains("SelfConfFree"));
    }
}
