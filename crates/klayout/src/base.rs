//! The unoptimized `Base` layout.

use oslay_model::Program;

use crate::{Layout, LayoutBuilder};

/// Lays the program out in source order — the original, unoptimized image
/// the paper calls `Base`. Cold special-case blocks sit inline between hot
/// blocks and cold routines between hot routines, exactly as the compiler
/// emitted them.
///
/// # Panics
///
/// Panics only on internal errors (source order covers every block).
#[must_use]
pub fn base_layout(program: &Program, base_addr: u64) -> Layout {
    let mut lb = LayoutBuilder::new(program, "Base", base_addr);
    for block in program.source_order() {
        lb.place(block);
    }
    lb.finish().expect("source order places every block once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};

    #[test]
    fn base_layout_is_dense_and_ordered() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 2));
        let l = base_layout(&k.program, 0);
        // Source order is monotonically increasing in addresses.
        let mut prev_end = 0u64;
        for b in k.program.source_order() {
            assert!(l.addr(b) >= prev_end);
            prev_end = l.addr(b) + u64::from(l.effective_size(b));
        }
        assert_eq!(l.span_end(), prev_end);
    }

    #[test]
    fn base_layout_has_no_stretch() {
        // Every natural fall-through is adjacent in source order.
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 2));
        let l = base_layout(&k.program, 0);
        for (id, _) in k.program.blocks() {
            assert_eq!(l.stretch(id), 0, "block {id} stretched in Base");
        }
        assert_eq!(l.static_bytes(), k.program.total_size());
    }

    #[test]
    fn base_address_offsets_everything() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 2));
        let l0 = base_layout(&k.program, 0);
        let l1 = base_layout(&k.program, 0x1000);
        for (id, _) in k.program.blocks() {
            assert_eq!(l0.addr(id) + 0x1000, l1.addr(id));
        }
    }
}
