//! Interop between layouts and the cache crate's attribution engine.
//!
//! The attribution engine (`oslay-cache`) explains misses in terms of
//! [`CodeRef`]s — which block, routine, and Figure 13 placement class an
//! address belongs to. Only the layout crate knows that mapping, so this
//! module builds the engine's [`AddressMap`] from a [`Layout`], and turns
//! a measured [`ConflictMatrix`] back into the routine ranking the
//! Section 4.4 `Call` optimization wants: instead of inferring conflict
//! candidates from static call-graph structure, rank routines by the
//! conflicts they actually caused and suffered.

use oslay_cache::{AddressMap, CodeClass, CodeRef, ConflictMatrix};
use oslay_model::{BlockId, Domain, Program, RoutineId};

use crate::{BlockClass, Layout};

/// The attribution-engine class corresponding to a layout block class.
#[must_use]
pub fn code_class(class: BlockClass) -> CodeClass {
    match class {
        BlockClass::SelfConfFree => CodeClass::SelfConfFree,
        BlockClass::MainSeq => CodeClass::MainSeq,
        BlockClass::OtherSeq => CodeClass::OtherSeq,
        BlockClass::Loop => CodeClass::Loop,
        BlockClass::Cold => CodeClass::Cold,
    }
}

/// The address spans of `layout`, one per block, tagged with the block's
/// [`CodeRef`].
///
/// `classes` carries the per-block Figure 13 classes of an optimized
/// layout (`OptLayout::classes`); pass `None` for unclassified layouts
/// (Base, Chang-Hwu), whose blocks all report [`CodeClass::MainSeq`] —
/// they are laid out as one main sequence.
///
/// Span lengths use the block's *effective* size (block plus stretch
/// padding), which `Layout::finish` guarantees non-overlapping, so every
/// fetch address of the block resolves to it.
#[must_use]
pub fn layout_spans(
    program: &Program,
    layout: &Layout,
    domain: Domain,
    classes: Option<&[BlockClass]>,
) -> Vec<(u64, u64, CodeRef)> {
    if let Some(classes) = classes {
        assert_eq!(
            classes.len(),
            layout.num_blocks(),
            "one class per layout block"
        );
    }
    (0..layout.num_blocks())
        .map(|i| {
            let id = BlockId::new(i);
            let class = classes.map_or(CodeClass::MainSeq, |c| code_class(c[i]));
            let code = CodeRef {
                domain,
                block: u32::try_from(i).expect("block index fits u32"),
                routine: u32::try_from(program.block(id).routine().index())
                    .expect("routine index fits u32"),
                class,
            };
            (layout.addr(id), u64::from(layout.effective_size(id)), code)
        })
        .collect()
}

/// Builds an [`AddressMap`] for a single layout. For a workload with an
/// application, chain the OS and app [`layout_spans`] into one
/// [`AddressMap::build`] call instead (the address spaces are disjoint).
#[must_use]
pub fn address_map(
    program: &Program,
    layout: &Layout,
    domain: Domain,
    classes: Option<&[BlockClass]>,
) -> AddressMap {
    AddressMap::build(layout_spans(program, layout, domain, classes))
}

/// Ranks `domain`'s routines by measured conflict involvement: the sum of
/// conflicts each routine suffered (victim row) and caused (evictor row),
/// heaviest first, zero-involvement routines omitted.
///
/// This is the measured counterpart of the static loop×routine matrix the
/// `Call` optimization builds from the call graph: feed the top of this
/// ranking to [`CallOptParams`](crate::CallOptParams) candidate selection
/// to target the conflicts a real trace exhibited.
#[must_use]
pub fn measured_conflict_ranking(matrix: &ConflictMatrix, domain: Domain) -> Vec<(RoutineId, u64)> {
    let mut involvement: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for (evictor, victim, count) in matrix.entries() {
        if evictor.0 == domain {
            *involvement.entry(evictor.1).or_insert(0) += count;
        }
        if victim.0 == domain {
            *involvement.entry(victim.1).or_insert(0) += count;
        }
    }
    let mut ranked: Vec<(RoutineId, u64)> = involvement
        .into_iter()
        .map(|(r, c)| (RoutineId::new(r as usize), c))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_layout;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};

    #[test]
    fn base_layout_map_covers_every_fetch_address() {
        let kernel = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 7));
        let layout = base_layout(&kernel.program, 0);
        let map = address_map(&kernel.program, &layout, Domain::Os, None);
        assert_eq!(map.len(), layout.num_blocks());
        for i in 0..layout.num_blocks() {
            let id = BlockId::new(i);
            for addr in layout.fetch_addrs(id) {
                let code = map.lookup(addr).expect("fetch address is mapped");
                assert_eq!(code.block as usize, i);
                assert_eq!(code.domain, Domain::Os);
                assert_eq!(code.class, CodeClass::MainSeq);
                assert_eq!(
                    code.routine as usize,
                    kernel.program.block(id).routine().index()
                );
            }
        }
    }

    #[test]
    fn classes_flow_through_to_code_refs() {
        let kernel = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 7));
        let layout = base_layout(&kernel.program, 0);
        let classes = vec![BlockClass::Cold; layout.num_blocks()];
        let map = address_map(&kernel.program, &layout, Domain::Os, Some(&classes));
        let id = BlockId::new(0);
        assert_eq!(map.lookup(layout.addr(id)).unwrap().class, CodeClass::Cold);
    }

    #[test]
    fn ranking_orders_routines_by_involvement() {
        let mut m = ConflictMatrix::default();
        m.add((Domain::Os, 0), (Domain::Os, 1), 10); // 0 causes 10, 1 suffers 10
        m.add((Domain::Os, 1), (Domain::Os, 0), 4);
        m.add((Domain::Os, 2), (Domain::Os, 1), 1);
        m.add((Domain::App, 9), (Domain::App, 9), 99); // other domain: ignored
        let ranked = measured_conflict_ranking(&m, Domain::Os);
        let as_u32: Vec<(usize, u64)> = ranked.iter().map(|&(r, c)| (r.index(), c)).collect();
        // Routine 1: 10+4+1 = 15; routine 0: 10+4 = 14; routine 2: 1.
        assert_eq!(as_u32, vec![(1, 15), (0, 14), (2, 1)]);
    }
}
