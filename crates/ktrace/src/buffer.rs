//! Hardware-performance-monitor trace buffer substrate.
//!
//! The Alliant FX/8 monitor used in the paper attaches one probe per
//! processor; each probe owns a trace buffer of "over one million
//! references". When any buffer nears filling it raises a non-maskable
//! interrupt, the processors halt within ten instructions, a workstation
//! drains the buffers, and the machine is restarted — tracing an unbounded
//! stretch of workload with negligible perturbation (Section 2.1).
//!
//! [`TraceBuffer`] models that capture path: fixed capacity, a high-water
//! mark, and a drain callback standing in for the workstation dump. The
//! simulation pipeline itself works on in-memory block traces, but the
//! buffer is exercised by the quickstart example and by tests to document
//! the measurement substrate the original system depended on.

/// One captured reference record.
///
/// The hardware stores 32 address bits, a 20-bit timestamp, a read/write
/// bit, and miscellaneous bits per reference.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct TraceRecord {
    /// The 32-bit address referenced.
    pub addr: u32,
    /// 20-bit wrapping timestamp (masked on construction).
    pub timestamp: u32,
    /// True for writes, false for reads/fetches.
    pub is_write: bool,
}

impl TraceRecord {
    /// Timestamp mask: the monitor stores 20 bits.
    pub const TIMESTAMP_BITS: u32 = 20;

    /// Creates a record, wrapping the timestamp to 20 bits.
    #[must_use]
    pub fn new(addr: u32, timestamp: u32, is_write: bool) -> Self {
        Self {
            addr,
            timestamp: timestamp & ((1 << Self::TIMESTAMP_BITS) - 1),
            is_write,
        }
    }
}

/// A fixed-capacity capture buffer with a drain callback.
///
/// # Example
///
/// ```
/// use oslay_trace::{TraceBuffer, TraceRecord};
///
/// let mut drained = 0usize;
/// {
///     let mut buf = TraceBuffer::new(4, |records: &[TraceRecord]| drained += records.len());
///     for t in 0..10u32 {
///         buf.capture(TraceRecord::new(0x1000 + 4 * t, t, false));
///     }
///     buf.flush();
/// }
/// assert_eq!(drained, 10);
/// ```
pub struct TraceBuffer<F: FnMut(&[TraceRecord])> {
    records: Vec<TraceRecord>,
    capacity: usize,
    drains: u64,
    captured: u64,
    on_drain: F,
}

impl<F: FnMut(&[TraceRecord])> TraceBuffer<F> {
    /// Creates a buffer of the given capacity.
    ///
    /// The paper's hardware holds a bit over one million references per
    /// probe; use `1 << 20` to model it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, on_drain: F) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        Self {
            records: Vec::with_capacity(capacity),
            capacity,
            drains: 0,
            captured: 0,
            on_drain,
        }
    }

    /// Captures one reference. If the buffer reaches capacity, the machine
    /// "halts" and the drain callback runs (the NMI + workstation dump).
    pub fn capture(&mut self, record: TraceRecord) {
        self.records.push(record);
        self.captured += 1;
        if self.records.len() >= self.capacity {
            self.drain();
        }
    }

    /// Forces a drain of any buffered records.
    pub fn flush(&mut self) {
        if !self.records.is_empty() {
            self.drain();
        }
    }

    /// Number of drain events so far (machine halts in the real system).
    #[must_use]
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Total records captured so far.
    #[must_use]
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Records currently buffered (not yet drained).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.records.len()
    }

    fn drain(&mut self) {
        self.drains += 1;
        (self.on_drain)(&self.records);
        self.records.clear();
    }
}

impl<F: FnMut(&[TraceRecord])> std::fmt::Debug for TraceBuffer<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.capacity)
            .field("pending", &self.records.len())
            .field("drains", &self.drains)
            .field("captured", &self.captured)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_at_capacity() {
        let mut chunks = Vec::new();
        let mut buf = TraceBuffer::new(3, |r: &[TraceRecord]| chunks.push(r.len()));
        for t in 0..7u32 {
            buf.capture(TraceRecord::new(t, t, false));
        }
        assert_eq!(buf.drains(), 2);
        assert_eq!(buf.pending(), 1);
        buf.flush();
        assert_eq!(buf.drains(), 3);
        drop(buf);
        assert_eq!(chunks, vec![3, 3, 1]);
    }

    #[test]
    fn flush_on_empty_is_noop() {
        let mut buf = TraceBuffer::new(2, |_: &[TraceRecord]| panic!("must not drain"));
        buf.flush();
        assert_eq!(buf.drains(), 0);
    }

    #[test]
    fn timestamp_wraps_to_20_bits() {
        let r = TraceRecord::new(0, 0xFFF0_0001, false);
        assert_eq!(r.timestamp, 0x1);
        let r = TraceRecord::new(0, (1 << 20) - 1, true);
        assert_eq!(r.timestamp, (1 << 20) - 1);
    }

    #[test]
    fn captured_counts_everything() {
        let mut buf = TraceBuffer::new(2, |_: &[TraceRecord]| {});
        for t in 0..5u32 {
            buf.capture(TraceRecord::new(t, t, t % 2 == 0));
        }
        assert_eq!(buf.captured(), 5);
    }
}
