//! Trace events and the trace container.

use oslay_model::{BlockId, Domain, SeedKind};

/// One event in a block-level execution trace.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum TraceEvent {
    /// The operating system was entered through the given seed class.
    OsEnter(SeedKind),
    /// An operating-system invocation completed and control returned to the
    /// application (or the idle loop).
    OsExit,
    /// A basic block was executed.
    Block {
        /// The executed block. OS blocks index the kernel program; app
        /// blocks index the application program.
        id: BlockId,
        /// Which program the block belongs to.
        domain: Domain,
    },
    /// A diagnostic phase marker. Carries no execution semantics; the
    /// attribution engine (`oslay-cache`) uses it to segment conflict
    /// counts into workload epochs, and every other consumer ignores it.
    Mark(u32),
}

/// A consumer of trace events.
///
/// The engine's streaming path ([`crate::Engine::run_into`]) feeds events
/// to a sink as they are generated, so paper-scale workloads never
/// materialize the full event vector. [`Trace`] itself is a sink — the
/// buffered [`crate::Engine::run`] path is just `run_into` with a `Trace`
/// as the sink — and so is the cache replayer in `core`.
pub trait TraceSink {
    /// Receives the next event of the stream, in execution order.
    fn event(&mut self, event: TraceEvent);
}

impl TraceSink for Trace {
    fn event(&mut self, event: TraceEvent) {
        self.push(event);
    }
}

/// Fans one event stream out to two sinks, in order: `first` sees each
/// event before `second`.
///
/// This is how a live run is archived while it simulates: the trace
/// engine drives a `TeeSink` whose arms are an `oslay-tracestore` writer
/// and the cache replayer, so the persisted file and the live result are
/// produced from the *same* walk — there is no second traversal to
/// diverge.
#[derive(Debug)]
pub struct TeeSink<'a, A: TraceSink + ?Sized, B: TraceSink + ?Sized> {
    first: &'a mut A,
    second: &'a mut B,
}

impl<'a, A: TraceSink + ?Sized, B: TraceSink + ?Sized> TeeSink<'a, A, B> {
    /// Tees events to `first` then `second`.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        Self { first, second }
    }
}

impl<A: TraceSink + ?Sized, B: TraceSink + ?Sized> TraceSink for TeeSink<'_, A, B> {
    fn event(&mut self, event: TraceEvent) {
        self.first.event(event);
        self.second.event(event);
    }
}

/// A complete block-level trace plus summary counters.
///
/// Produced by [`crate::Engine::run`]. The event stream is the ground truth
/// consumed by the profiler (`oslay-profile`) and, after address mapping
/// through a layout, by the cache simulator (`oslay-cache`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    os_blocks: u64,
    app_blocks: u64,
    invocations: [u64; 4],
}

impl Trace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::OsEnter(kind) => self.invocations[kind.index()] += 1,
            TraceEvent::Block { domain, .. } => match domain {
                Domain::Os => self.os_blocks += 1,
                Domain::App => self.app_blocks += 1,
            },
            TraceEvent::OsExit | TraceEvent::Mark(_) => {}
        }
        self.events.push(event);
    }

    /// The raw event stream.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of operating-system block executions.
    #[must_use]
    pub fn os_blocks(&self) -> u64 {
        self.os_blocks
    }

    /// Number of application block executions.
    #[must_use]
    pub fn app_blocks(&self) -> u64 {
        self.app_blocks
    }

    /// Total block executions.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.os_blocks + self.app_blocks
    }

    /// Number of operating-system invocations of the given class.
    #[must_use]
    pub fn invocations(&self, kind: SeedKind) -> u64 {
        self.invocations[kind.index()]
    }

    /// Total operating-system invocations.
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.invocations.iter().sum()
    }

    /// Fraction of invocations in each class (the paper's Table 1 rows
    /// "Interrupt/Page Fault/SysCall/Other Invoc.").
    #[must_use]
    pub fn invocation_mix(&self) -> [f64; 4] {
        let total = self.total_invocations().max(1) as f64;
        let mut out = [0.0; 4];
        for (slot, &n) in out.iter_mut().zip(&self.invocations) {
            *slot = n as f64 / total;
        }
        out
    }

    /// True if the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events (blocks plus boundary markers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Lengths (in blocks) of each operating-system invocation, in trace
    /// order. Together with [`Trace::invocation_mix`] this characterizes
    /// how the workload drives the kernel.
    #[must_use]
    pub fn invocation_lengths(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut current: Option<u32> = None;
        for event in &self.events {
            match event {
                TraceEvent::OsEnter(_) => current = Some(0),
                TraceEvent::OsExit => {
                    if let Some(n) = current.take() {
                        out.push(n);
                    }
                }
                TraceEvent::Block { domain, .. } => {
                    if *domain == Domain::Os {
                        if let Some(n) = current.as_mut() {
                            *n += 1;
                        }
                    }
                }
                TraceEvent::Mark(_) => {}
            }
        }
        out
    }

    /// Mean OS invocation length in blocks (0 for an empty trace).
    #[must_use]
    pub fn mean_invocation_length(&self) -> f64 {
        let lengths = self.invocation_lengths();
        if lengths.is_empty() {
            return 0.0;
        }
        lengths.iter().map(|&n| f64::from(n)).sum::<f64>() / lengths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_events() {
        let mut t = Trace::default();
        t.push(TraceEvent::OsEnter(SeedKind::SysCall));
        t.push(TraceEvent::Block {
            id: BlockId::new(1),
            domain: Domain::Os,
        });
        t.push(TraceEvent::Block {
            id: BlockId::new(2),
            domain: Domain::Os,
        });
        t.push(TraceEvent::OsExit);
        t.push(TraceEvent::Block {
            id: BlockId::new(0),
            domain: Domain::App,
        });
        assert_eq!(t.os_blocks(), 2);
        assert_eq!(t.app_blocks(), 1);
        assert_eq!(t.total_blocks(), 3);
        assert_eq!(t.invocations(SeedKind::SysCall), 1);
        assert_eq!(t.total_invocations(), 1);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn invocation_mix_sums_to_one() {
        let mut t = Trace::default();
        for kind in [SeedKind::Interrupt, SeedKind::Interrupt, SeedKind::Other] {
            t.push(TraceEvent::OsEnter(kind));
        }
        let mix = t.invocation_mix();
        assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((mix[SeedKind::Interrupt.index()] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invocation_lengths_count_os_blocks_per_invocation() {
        let mut t = Trace::default();
        t.push(TraceEvent::OsEnter(SeedKind::Interrupt));
        t.push(TraceEvent::Block {
            id: BlockId::new(0),
            domain: Domain::Os,
        });
        t.push(TraceEvent::Block {
            id: BlockId::new(1),
            domain: Domain::Os,
        });
        t.push(TraceEvent::OsExit);
        t.push(TraceEvent::Block {
            id: BlockId::new(9),
            domain: Domain::App,
        });
        t.push(TraceEvent::OsEnter(SeedKind::SysCall));
        t.push(TraceEvent::Block {
            id: BlockId::new(2),
            domain: Domain::Os,
        });
        t.push(TraceEvent::OsExit);
        assert_eq!(t.invocation_lengths(), vec![2, 1]);
        assert!((t.mean_invocation_length() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tee_sink_duplicates_the_stream() {
        let mut a = Trace::default();
        let mut b = Trace::default();
        {
            let mut tee = TeeSink::new(&mut a, &mut b);
            tee.event(TraceEvent::OsEnter(SeedKind::SysCall));
            tee.event(TraceEvent::Block {
                id: BlockId::new(1),
                domain: Domain::Os,
            });
            tee.event(TraceEvent::OsExit);
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_trace_mix_is_zero() {
        let t = Trace::default();
        assert_eq!(t.invocation_mix(), [0.0; 4]);
        assert!(t.is_empty());
        assert!(t.invocation_lengths().is_empty());
        assert_eq!(t.mean_invocation_length(), 0.0);
    }
}
