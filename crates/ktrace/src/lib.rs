//! Trace generation for the `oslay` reproduction.
//!
//! This crate turns a [`oslay_model::Program`] pair (kernel + optional
//! application) into a **block-level execution trace**: the sequence of
//! basic blocks a processor executes, annotated with operating-system
//! invocation boundaries and their entry class.
//!
//! The paper gathered equivalent data with a hardware performance monitor
//! attached to the four processors of an Alliant FX/8 (Section 2.1); the
//! [`TraceBuffer`] type models that monitor's capture substrate (a ~1M-entry
//! buffer that halts the machine and drains to disk when nearly full), and
//! the [`Engine`] replaces the real machine with a stochastic walk of the
//! program's control-flow graph, driven by per-arc probabilities and
//! per-workload dispatch weights.
//!
//! Traces are **layout-independent**: events name basic blocks, not
//! addresses. Each candidate code layout maps the *same* trace to a
//! different address stream (see `oslay-layout`), exactly as the paper
//! evaluates many layouts against one set of hardware traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod engine;
mod event;
mod workload;

pub use buffer::{TraceBuffer, TraceRecord};
pub use engine::{Engine, EngineConfig};
pub use event::{TeeSink, Trace, TraceEvent, TraceSink};
pub use workload::{standard_workloads, StandardWorkload, SyscallProfile, WorkloadSpec};
