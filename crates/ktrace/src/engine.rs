//! The stochastic trace engine.
//!
//! Walks the kernel (and optionally an application) control-flow graph,
//! emitting a block-level trace. The walk interleaves application *bursts*
//! with operating-system *invocations*, mimicking a processor that runs
//! user code until an interrupt, fault, or system call transfers control to
//! the kernel. The application walk is suspended — call stack and all —
//! during each OS invocation and resumed afterwards.

use std::sync::Arc;

use oslay_model::rng::Rng;
use oslay_model::{BlockId, Domain, Program, SeedKind, Terminator};
use oslay_observe::Probe;

use crate::{Trace, TraceEvent, TraceSink, WorkloadSpec};

/// Engine tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct EngineConfig {
    /// RNG seed; traces are bit-reproducible for a given seed.
    pub seed: u64,
    /// Hard cap on blocks per OS invocation (safety net against
    /// pathological user-supplied programs).
    pub max_invocation_blocks: usize,
    /// Maximum call-stack depth; deeper calls are skipped rather than
    /// followed (the synthetic kernel's call graph is acyclic, so this only
    /// matters for user-supplied recursive programs).
    pub max_call_depth: usize,
}

impl EngineConfig {
    /// Default configuration with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_invocation_blocks: 200_000,
            max_call_depth: 64,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// A suspended walk through one program: current block + call stack of
/// return continuations.
#[derive(Clone, Debug)]
struct Walk {
    current: Option<BlockId>,
    stack: Vec<BlockId>,
}

impl Walk {
    fn at(block: BlockId) -> Self {
        Self {
            current: Some(block),
            stack: Vec::new(),
        }
    }
}

/// Generates block-level traces for one workload on one kernel.
///
/// # Example
///
/// ```
/// use oslay_model::synth::{generate_kernel, KernelParams, Scale};
/// use oslay_trace::{standard_workloads, Engine, EngineConfig};
///
/// let kernel = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 1));
/// let spec = &standard_workloads(&kernel.tables)[3]; // Shell: OS only
/// let mut engine = Engine::new(&kernel.program, None, spec, EngineConfig::new(7));
/// let trace = engine.run(10_000);
/// assert!(trace.os_blocks() >= 10_000);
/// ```
pub struct Engine<'a> {
    kernel: &'a Program,
    app: Option<&'a Program>,
    spec: &'a WorkloadSpec,
    cfg: EngineConfig,
    rng: Rng,
    app_walk: Option<Walk>,
    truncated_invocations: u64,
    call_depth_hwm: usize,
    /// Consulted once per invocation/burst, never per block.
    probe: Option<Arc<dyn Probe + Send + Sync>>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("spec", &self.spec.name)
            .field("cfg", &self.cfg)
            .field("truncated_invocations", &self.truncated_invocations)
            .field("call_depth_hwm", &self.call_depth_hwm)
            .field("probe", &self.probe.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> Engine<'a> {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is not an OS program, if `app` is not an App
    /// program with an entry, or if the spec requests an application burst
    /// but no application was supplied.
    #[must_use]
    pub fn new(
        kernel: &'a Program,
        app: Option<&'a Program>,
        spec: &'a WorkloadSpec,
        cfg: EngineConfig,
    ) -> Self {
        assert_eq!(kernel.domain(), Domain::Os, "kernel must be an OS program");
        if let Some(app) = app {
            assert_eq!(app.domain(), Domain::App, "app must be an App program");
            assert!(app.entry().is_some(), "app needs an entry routine");
        }
        assert!(
            !spec.has_app() || app.is_some(),
            "workload {:?} interleaves an application but none was supplied",
            spec.name
        );
        let app_walk = app.and_then(|p| {
            if spec.has_app() {
                let entry = p.routine(p.entry().expect("checked above")).entry();
                Some(Walk::at(entry))
            } else {
                None
            }
        });
        Self {
            kernel,
            app,
            spec,
            cfg,
            rng: Rng::seed_from_u64(cfg.seed),
            app_walk,
            truncated_invocations: 0,
            call_depth_hwm: 0,
            probe: None,
        }
    }

    /// Attaches a probe receiving `trace.invocation_len` and
    /// `trace.burst_len` histograms plus the `trace.call_depth_hwm`
    /// gauge. The probe is consulted once per invocation or burst, not
    /// per block, so tracing cost is unchanged within the walk.
    #[must_use]
    pub fn with_probe(mut self, probe: Arc<dyn Probe + Send + Sync>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Deepest call stack reached so far in either domain's walk.
    #[must_use]
    pub fn call_depth_high_water(&self) -> usize {
        self.call_depth_hwm
    }

    /// Runs until at least `target_os_blocks` operating-system block events
    /// have been emitted, finishing the final invocation cleanly.
    ///
    /// Buffered compatibility shim over [`Engine::run_into`]: collects the
    /// stream into a [`Trace`]. Streaming consumers that only need the
    /// events once should pass their own sink to `run_into` instead and
    /// skip the event vector entirely.
    pub fn run(&mut self, target_os_blocks: u64) -> Trace {
        let mut trace = Trace::default();
        self.run_into(target_os_blocks, &mut trace);
        trace
    }

    /// Streaming run: generates the same event sequence as [`Engine::run`]
    /// (bit-identical for a given seed) but hands each event to `sink` as
    /// it is produced, so nothing is buffered.
    pub fn run_into<S: TraceSink + ?Sized>(&mut self, target_os_blocks: u64, sink: &mut S) {
        let mut os_blocks = 0u64;
        while os_blocks < target_os_blocks {
            self.app_burst(sink);
            os_blocks += self.os_invocation(sink);
        }
        if let Some(probe) = &self.probe {
            probe.gauge_set("trace.call_depth_hwm", self.call_depth_hwm as f64);
        }
    }

    /// Number of invocations cut short by the
    /// [`EngineConfig::max_invocation_blocks`] safety cap (should be zero
    /// for well-formed programs).
    #[must_use]
    pub fn truncated_invocations(&self) -> u64 {
        self.truncated_invocations
    }

    /// Executes one complete OS invocation into `sink`; returns the number
    /// of OS block events emitted.
    fn os_invocation<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> u64 {
        let kind = self.sample_seed_kind();
        sink.event(TraceEvent::OsEnter(kind));
        let entry = self
            .kernel
            .seed_block(kind)
            .expect("OS program has all seeds");
        let mut walk = Walk::at(entry);
        let mut steps = 0usize;
        while let Some(block) = walk.current {
            sink.event(TraceEvent::Block {
                id: block,
                domain: Domain::Os,
            });
            steps += 1;
            if steps >= self.cfg.max_invocation_blocks {
                self.truncated_invocations += 1;
                break;
            }
            self.advance(self.kernel, &mut walk);
        }
        if let Some(probe) = &self.probe {
            probe.histogram_record("trace.invocation_len", steps as u64);
        }
        sink.event(TraceEvent::OsExit);
        steps as u64
    }

    /// Executes one application burst into `sink` (no-op for OS-only
    /// workloads).
    fn app_burst<S: TraceSink + ?Sized>(&mut self, sink: &mut S) {
        let Some(walk) = self.app_walk.as_mut() else {
            return;
        };
        let app = self.app.expect("app_walk implies app");
        // Exponentially distributed burst length with the configured mean:
        // OS invocations arrive as a Poisson-like process over user
        // instructions.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let len = (-self.spec.app_burst_mean * u.ln()).ceil() as usize;
        let mut emitted = 0u64;
        for _ in 0..len.max(1) {
            let Some(block) = walk.current else {
                // The job loop returned all the way out (does not happen
                // with generated apps); restart at main.
                let entry = app.routine(app.entry().expect("validated")).entry();
                walk.current = Some(entry);
                walk.stack.clear();
                continue;
            };
            sink.event(TraceEvent::Block {
                id: block,
                domain: Domain::App,
            });
            emitted += 1;
            Self::advance_walk(
                app,
                walk,
                &mut self.rng,
                self.spec,
                &self.cfg,
                &mut self.call_depth_hwm,
            );
        }
        if let Some(probe) = &self.probe {
            probe.histogram_record("trace.burst_len", emitted);
        }
    }

    fn advance(&mut self, program: &Program, walk: &mut Walk) {
        Self::advance_walk(
            program,
            walk,
            &mut self.rng,
            self.spec,
            &self.cfg,
            &mut self.call_depth_hwm,
        );
    }

    /// Advances a walk by one control transfer.
    fn advance_walk(
        program: &Program,
        walk: &mut Walk,
        rng: &mut Rng,
        spec: &WorkloadSpec,
        cfg: &EngineConfig,
        depth_hwm: &mut usize,
    ) {
        let block = walk.current.expect("advance requires a current block");
        match program.block(block).terminator() {
            Terminator::Jump(dst) => walk.current = Some(*dst),
            Terminator::Branch(targets) => {
                let mut u: f64 = rng.gen_f64();
                let mut chosen = targets.last().expect("validated nonempty").dst;
                for t in targets {
                    if u < t.prob {
                        chosen = t.dst;
                        break;
                    }
                    u -= t.prob;
                }
                walk.current = Some(chosen);
            }
            Terminator::Dispatch { table, targets } => {
                let idx = match spec.dispatch(*table) {
                    Some(weights) => weighted_choice(rng, weights),
                    None => rng.gen_range(0..targets.len()),
                };
                walk.current = Some(targets[idx.min(targets.len() - 1)]);
            }
            Terminator::Call { callee, ret_to } => {
                if walk.stack.len() >= cfg.max_call_depth {
                    walk.current = Some(*ret_to);
                } else {
                    walk.stack.push(*ret_to);
                    *depth_hwm = (*depth_hwm).max(walk.stack.len());
                    walk.current = Some(program.routine(*callee).entry());
                }
            }
            Terminator::Return => walk.current = walk.stack.pop(),
        }
    }

    fn sample_seed_kind(&mut self) -> SeedKind {
        let idx = weighted_choice(&mut self.rng, &self.spec.invocation_mix);
        SeedKind::from_index(idx)
    }
}

/// Samples an index proportional to `weights` (which need not be
/// normalized). Returns 0 if all weights are zero.
fn weighted_choice(rng: &mut Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut u: f64 = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_app_mix, generate_kernel, AppParams, KernelParams, Scale};

    use crate::{standard_workloads, StandardWorkload};

    fn setup() -> (oslay_model::synth::SyntheticKernel, Vec<WorkloadSpec>) {
        let kernel = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 11));
        let specs = standard_workloads(&kernel.tables);
        (kernel, specs)
    }

    #[test]
    fn shell_trace_is_os_only_and_meets_target() {
        let (kernel, specs) = setup();
        let mut engine = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(1));
        let trace = engine.run(5_000);
        assert!(trace.os_blocks() >= 5_000);
        assert_eq!(trace.app_blocks(), 0);
        assert_eq!(engine.truncated_invocations(), 0);
    }

    #[test]
    fn enter_exit_markers_bracket_os_blocks() {
        let (kernel, specs) = setup();
        let mut engine = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(2));
        let trace = engine.run(2_000);
        let mut in_os = false;
        for ev in trace.events() {
            match ev {
                TraceEvent::OsEnter(_) => {
                    assert!(!in_os, "nested OsEnter");
                    in_os = true;
                }
                TraceEvent::OsExit => {
                    assert!(in_os, "OsExit without OsEnter");
                    in_os = false;
                }
                TraceEvent::Block { domain, .. } => match domain {
                    Domain::Os => assert!(in_os, "OS block outside invocation"),
                    Domain::App => assert!(!in_os, "app block inside invocation"),
                },
                TraceEvent::Mark(_) => {}
            }
        }
        assert!(!in_os, "trace ends mid-invocation");
    }

    #[test]
    fn traces_are_deterministic() {
        let (kernel, specs) = setup();
        let t1 = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(5)).run(3_000);
        let t2 = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(5)).run(3_000);
        assert_eq!(t1, t2);
        let t3 = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(6)).run(3_000);
        assert_ne!(t1, t3);
    }

    #[test]
    fn run_into_streams_the_same_events_as_run() {
        struct Collect(Vec<TraceEvent>);
        impl TraceSink for Collect {
            fn event(&mut self, event: TraceEvent) {
                self.0.push(event);
            }
        }
        let (kernel, specs) = setup();
        let buffered =
            Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(5)).run(3_000);
        let mut sink = Collect(Vec::new());
        Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(5))
            .run_into(3_000, &mut sink);
        assert_eq!(buffered.events(), sink.0.as_slice());
    }

    #[test]
    fn invocation_mix_approaches_spec() {
        let (kernel, specs) = setup();
        let spec = &specs[3]; // Shell
        let mut engine = Engine::new(&kernel.program, None, spec, EngineConfig::new(9));
        let trace = engine.run(150_000);
        let mix = trace.invocation_mix();
        for (got, want) in mix.iter().zip(&spec.invocation_mix) {
            assert!(
                (got - want).abs() < 0.06,
                "mix {mix:?} vs spec {:?}",
                spec.invocation_mix
            );
        }
    }

    #[test]
    fn app_interleaving_produces_both_domains() {
        let (kernel, specs) = setup();
        let spec = &specs[0]; // TRFD_4
        let app = generate_app_mix(
            &StandardWorkload::Trfd4.app_components(),
            &AppParams::new(3).with_scale(0.3),
        );
        let mut engine = Engine::new(&kernel.program, Some(&app), spec, EngineConfig::new(4));
        let trace = engine.run(20_000);
        assert!(trace.app_blocks() > 0, "expected app blocks");
        assert!(trace.os_blocks() >= 20_000);
        // App share should be substantial (the paper's workloads are
        // 40-60% OS references).
        let share = trace.os_blocks() as f64 / trace.total_blocks() as f64;
        assert!((0.15..0.95).contains(&share), "OS share {share}");
    }

    #[test]
    fn os_blocks_reference_kernel_blocks_only() {
        let (kernel, specs) = setup();
        let mut engine = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(8));
        let trace = engine.run(1_000);
        for ev in trace.events() {
            if let TraceEvent::Block {
                id,
                domain: Domain::Os,
            } = ev
            {
                assert!(id.index() < kernel.program.num_blocks());
            }
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = Rng::seed_from_u64(1);
        let w = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(weighted_choice(&mut rng, &w), 2);
        }
        assert_eq!(weighted_choice(&mut rng, &[0.0, 0.0]), 0);
    }

    #[test]
    fn dispatch_without_weights_falls_back_to_uniform() {
        use oslay_model::{Domain, ProgramBuilder, SeedKind, Terminator};
        // A seed routine whose dispatch has no workload weights: all
        // targets must still be reachable (uniform fallback).
        let mut b = ProgramBuilder::new(Domain::Os);
        let table = b.new_dispatch_table();
        let r = b.begin_routine("seed");
        let entry = b.add_block(8);
        let t0 = b.add_block(8);
        let t1 = b.add_block(8);
        let t2 = b.add_block(8);
        b.terminate(
            entry,
            Terminator::Dispatch {
                table,
                targets: vec![t0, t1, t2],
            },
        );
        for t in [t0, t1, t2] {
            b.terminate(t, Terminator::Return);
        }
        b.end_routine();
        for kind in SeedKind::ALL {
            b.set_seed(kind, r);
        }
        let p = b.build().unwrap();
        let spec = WorkloadSpec {
            name: "uniform".into(),
            invocation_mix: [1.0, 0.0, 0.0, 0.0],
            dispatch_weights: Default::default(),
            app_burst_mean: 0.0,
        };
        let trace = Engine::new(&p, None, &spec, EngineConfig::new(3)).run(3_000);
        let mut hit = [0u64; 3];
        for ev in trace.events() {
            if let crate::TraceEvent::Block { id, .. } = ev {
                for (i, t) in [t0, t1, t2].iter().enumerate() {
                    if id == t {
                        hit[i] += 1;
                    }
                }
            }
        }
        for (i, &h) in hit.iter().enumerate() {
            assert!(h > 100, "dispatch target {i} hit only {h} times");
        }
    }

    #[test]
    fn probe_collects_shape_metrics() {
        use oslay_observe::MetricRegistry;

        let (kernel, specs) = setup();
        let spec = &specs[0]; // TRFD_4: app + OS
        let app = generate_app_mix(
            &StandardWorkload::Trfd4.app_components(),
            &AppParams::new(3).with_scale(0.3),
        );
        let reg = Arc::new(MetricRegistry::new());
        let mut engine = Engine::new(&kernel.program, Some(&app), spec, EngineConfig::new(4))
            .with_probe(reg.clone());
        let trace = engine.run(5_000);

        let inv = reg.histogram("trace.invocation_len").expect("invocations");
        assert!(inv.count() > 0);
        assert_eq!(
            inv.sum(),
            trace.os_blocks(),
            "every OS block is in some invocation"
        );
        let burst = reg.histogram("trace.burst_len").expect("bursts");
        assert_eq!(
            burst.sum(),
            trace.app_blocks(),
            "every app block is in some burst"
        );
        let hwm = reg
            .gauge("trace.call_depth_hwm")
            .expect("gauge set after run");
        assert!(hwm >= 1.0, "synthetic programs make calls");
        assert_eq!(hwm as usize, engine.call_depth_high_water());
    }

    #[test]
    fn probe_free_engine_matches_probed_engine() {
        use oslay_observe::MetricRegistry;

        let (kernel, specs) = setup();
        let plain = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(5)).run(3_000);
        let reg = Arc::new(MetricRegistry::new());
        let probed = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(5))
            .with_probe(reg)
            .run(3_000);
        assert_eq!(plain, probed, "instrumentation must not perturb the walk");
    }

    #[test]
    #[should_panic(expected = "interleaves an application")]
    fn app_workload_without_app_panics() {
        let (kernel, specs) = setup();
        let _ = Engine::new(&kernel.program, None, &specs[0], EngineConfig::new(1));
    }
}
