//! Workload specifications.
//!
//! A [`WorkloadSpec`] tells the engine *how* a workload drives the kernel:
//! the mix of operating-system entry classes (the paper's Table 1), the
//! per-dispatch-table weights (which interrupts fire, which system calls
//! are made, which fault types occur), and how much application execution
//! happens between OS invocations.
//!
//! [`StandardWorkload`] reproduces the paper's four workloads:
//!
//! | Workload | Character | Invocation mix (Int/PF/SC/Other) |
//! |---|---|---|
//! | `TRFD_4` | 4 copies of a parallel scientific code | 76.0 / 23.0 / 0.0 / 1.0 % |
//! | `TRFD+Make` | parallel code + C-compiler runs | 65.7 / 21.3 / 11.2 / 1.8 % |
//! | `ARC2D+Fsck` | fluid dynamics + file-system check | 73.8 / 21.9 / 2.4 / 1.9 % |
//! | `Shell` | heavy multiprogrammed shell script | 29.7 / 12.0 / 54.7 / 3.6 % |

use std::collections::BTreeMap;

use oslay_model::synth::{AppKind, DispatchTables};
use oslay_model::DispatchId;

/// How a workload drives the kernel's system-call dispatcher.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum SyscallProfile {
    /// All system calls equally likely.
    Uniform,
    /// Compiler-under-make style: read/write/open/close/stat plus process
    /// creation for each compilation.
    FileHeavy,
    /// Checker style (fsck): bulk sequential reads, seeks, stats.
    ScientificIo,
    /// Shell style: broad coverage with heavy process churn
    /// (fork/execve/exit/wait, pipes, dups).
    ShellBroad,
}

/// Index positions of named system calls in the synthetic kernel's
/// dispatch table (the order of `SYSCALL_NAMES` in `oslay-model`).
mod sc {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const OPEN: usize = 2;
    pub const CLOSE: usize = 3;
    pub const STAT: usize = 4;
    pub const LSEEK: usize = 6;
    pub const DUP: usize = 7;
    pub const PIPE: usize = 8;
    pub const IOCTL: usize = 9;
    pub const FORK: usize = 20;
    pub const EXECVE: usize = 22;
    pub const EXIT: usize = 23;
    pub const WAIT: usize = 24;
    pub const GETPID: usize = 26;
    pub const BRK: usize = 28;
    pub const GETTIMEOFDAY: usize = 32;
}

impl SyscallProfile {
    /// Builds a normalized weight vector for a dispatcher of `arity`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    #[must_use]
    pub fn weights(self, arity: usize) -> Vec<f64> {
        assert!(arity > 0, "syscall table must have entries");
        let mut w = vec![
            match self {
                SyscallProfile::Uniform => 1.0,
                // A trickle of everything else keeps rarely-used handlers
                // reachable, which is what grows the executed footprint of
                // syscall-heavy workloads over time (Table 1).
                SyscallProfile::FileHeavy => 0.01,
                SyscallProfile::ScientificIo => 0.004,
                SyscallProfile::ShellBroad => 0.2,
            };
            arity
        ];
        let mut bump = |idx: usize, val: f64| {
            if idx < arity {
                w[idx] = val;
            }
        };
        match self {
            SyscallProfile::Uniform => {}
            SyscallProfile::FileHeavy => {
                bump(sc::READ, 0.25);
                bump(sc::WRITE, 0.15);
                bump(sc::OPEN, 0.12);
                bump(sc::CLOSE, 0.12);
                bump(sc::STAT, 0.08);
                bump(sc::LSEEK, 0.05);
                bump(sc::BRK, 0.05);
                bump(sc::FORK, 0.04);
                bump(sc::EXECVE, 0.04);
                bump(sc::EXIT, 0.04);
                bump(sc::WAIT, 0.04);
            }
            SyscallProfile::ScientificIo => {
                bump(sc::READ, 0.30);
                bump(sc::WRITE, 0.15);
                bump(sc::LSEEK, 0.15);
                bump(sc::STAT, 0.10);
                bump(sc::OPEN, 0.08);
                bump(sc::CLOSE, 0.08);
            }
            SyscallProfile::ShellBroad => {
                bump(sc::FORK, 1.6);
                bump(sc::EXECVE, 1.6);
                bump(sc::EXIT, 1.6);
                bump(sc::WAIT, 1.6);
                bump(sc::OPEN, 1.2);
                bump(sc::CLOSE, 1.2);
                bump(sc::READ, 1.2);
                bump(sc::WRITE, 1.0);
                bump(sc::STAT, 1.0);
                bump(sc::PIPE, 0.8);
                bump(sc::DUP, 0.8);
                bump(sc::GETPID, 0.6);
                bump(sc::IOCTL, 0.6);
                bump(sc::GETTIMEOFDAY, 0.6);
            }
        }
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x /= total;
        }
        w
    }
}

/// Full description of how one workload exercises the system.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Workload name, as printed in tables.
    pub name: String,
    /// Probability of each OS entry class per invocation
    /// (indexed by [`oslay_model::SeedKind::index`]; must sum to 1).
    pub invocation_mix: [f64; 4],
    /// Weight vectors for workload-controlled dispatch tables. Tables not
    /// listed here fall back to uniform weights.
    pub dispatch_weights: BTreeMap<DispatchId, Vec<f64>>,
    /// Mean number of application blocks executed between consecutive OS
    /// invocations; `0.0` means the workload has no traced application
    /// references (the paper's `Shell`).
    pub app_burst_mean: f64,
}

impl WorkloadSpec {
    /// Weight vector for a dispatch table, if overridden.
    #[must_use]
    pub fn dispatch(&self, table: DispatchId) -> Option<&[f64]> {
        self.dispatch_weights.get(&table).map(Vec::as_slice)
    }

    /// True if this workload interleaves application execution.
    #[must_use]
    pub fn has_app(&self) -> bool {
        self.app_burst_mean > 0.0
    }
}

/// The four workloads of the paper's evaluation.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum StandardWorkload {
    /// `TRFD_4`: four copies of parallel TRFD; scheduling/interrupt bound.
    Trfd4,
    /// `TRFD+Make`: parallel code plus compiler runs; paging and syscalls.
    TrfdMake,
    /// `ARC2D+Fsck`: fluid dynamics plus a file-system check.
    Arc2dFsck,
    /// `Shell`: a heavily multiprogrammed shell script; syscall bound.
    Shell,
}

impl StandardWorkload {
    /// All four, in the paper's column order.
    pub const ALL: [StandardWorkload; 4] = [
        StandardWorkload::Trfd4,
        StandardWorkload::TrfdMake,
        StandardWorkload::Arc2dFsck,
        StandardWorkload::Shell,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StandardWorkload::Trfd4 => "TRFD_4",
            StandardWorkload::TrfdMake => "TRFD+Make",
            StandardWorkload::Arc2dFsck => "ARC2D+Fsck",
            StandardWorkload::Shell => "Shell",
        }
    }

    /// Invocation mix from the paper's Table 1.
    #[must_use]
    pub fn invocation_mix(self) -> [f64; 4] {
        match self {
            StandardWorkload::Trfd4 => [0.760, 0.230, 0.000, 0.010],
            StandardWorkload::TrfdMake => [0.657, 0.213, 0.112, 0.018],
            StandardWorkload::Arc2dFsck => [0.738, 0.219, 0.024, 0.019],
            StandardWorkload::Shell => [0.297, 0.120, 0.547, 0.036],
        }
    }

    /// Application components this workload interleaves, with mix weights.
    /// Empty for `Shell` (its application references are negligible and the
    /// paper does not trace them).
    #[must_use]
    pub fn app_components(self) -> Vec<(AppKind, f64)> {
        match self {
            StandardWorkload::Trfd4 => vec![(AppKind::Scientific, 1.0)],
            StandardWorkload::TrfdMake => {
                vec![(AppKind::Scientific, 0.45), (AppKind::Compiler, 0.55)]
            }
            StandardWorkload::Arc2dFsck => {
                vec![(AppKind::Scientific, 0.70), (AppKind::Utility, 0.30)]
            }
            StandardWorkload::Shell => vec![],
        }
    }

    /// Builds the full spec against a synthetic kernel's dispatch tables.
    #[must_use]
    pub fn spec(self, tables: &DispatchTables) -> WorkloadSpec {
        let mut dispatch_weights = BTreeMap::new();
        // Interrupt types: timer, cross-processor, device I/O, sync,
        // disk completion, network.
        let interrupt = match self {
            StandardWorkload::Trfd4 => vec![0.42, 0.33, 0.04, 0.18, 0.02, 0.01],
            StandardWorkload::TrfdMake => vec![0.45, 0.22, 0.10, 0.08, 0.12, 0.03],
            StandardWorkload::Arc2dFsck => vec![0.45, 0.25, 0.08, 0.08, 0.12, 0.02],
            StandardWorkload::Shell => vec![0.52, 0.08, 0.16, 0.04, 0.12, 0.08],
        };
        // Fault types: TLB fix, protection, demand-zero, copy-on-write,
        // swap-in.
        let fault = match self {
            StandardWorkload::Trfd4 => vec![0.70, 0.08, 0.18, 0.02, 0.02],
            StandardWorkload::TrfdMake => vec![0.45, 0.08, 0.25, 0.12, 0.10],
            StandardWorkload::Arc2dFsck => vec![0.55, 0.08, 0.22, 0.07, 0.08],
            StandardWorkload::Shell => vec![0.45, 0.08, 0.28, 0.11, 0.08],
        };
        // Other services: context switch, idle, signal delivery, preempt.
        let other = match self {
            StandardWorkload::Trfd4 => vec![0.70, 0.12, 0.04, 0.14],
            StandardWorkload::TrfdMake => vec![0.60, 0.08, 0.17, 0.15],
            StandardWorkload::Arc2dFsck => vec![0.65, 0.08, 0.13, 0.14],
            StandardWorkload::Shell => vec![0.50, 0.04, 0.30, 0.16],
        };
        let profile = match self {
            StandardWorkload::Trfd4 => SyscallProfile::Uniform,
            StandardWorkload::TrfdMake => SyscallProfile::FileHeavy,
            StandardWorkload::Arc2dFsck => SyscallProfile::ScientificIo,
            StandardWorkload::Shell => SyscallProfile::ShellBroad,
        };
        dispatch_weights.insert(
            tables.interrupt,
            normalize_to(interrupt, tables.interrupt_arity),
        );
        dispatch_weights.insert(tables.fault, normalize_to(fault, tables.fault_arity));
        dispatch_weights.insert(tables.other, normalize_to(other, tables.other_arity));
        dispatch_weights.insert(tables.syscall, profile.weights(tables.syscall_arity));
        let app_burst_mean = match self {
            StandardWorkload::Trfd4 => 150.0,
            StandardWorkload::TrfdMake => 320.0,
            StandardWorkload::Arc2dFsck => 230.0,
            StandardWorkload::Shell => 0.0,
        };
        WorkloadSpec {
            name: self.name().to_owned(),
            invocation_mix: self.invocation_mix(),
            dispatch_weights,
            app_burst_mean,
        }
    }
}

/// Fits a weight vector to a table arity (truncate or pad with the minimum
/// weight) and renormalizes.
fn normalize_to(mut w: Vec<f64>, arity: usize) -> Vec<f64> {
    let min = w.iter().copied().fold(f64::INFINITY, f64::min).max(1e-6);
    w.resize(arity, min);
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Builds the specs for all four standard workloads against a kernel.
#[must_use]
pub fn standard_workloads(tables: &DispatchTables) -> Vec<WorkloadSpec> {
    StandardWorkload::ALL
        .iter()
        .map(|w| w.spec(tables))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};

    fn tables() -> DispatchTables {
        generate_kernel(&KernelParams::at_scale(Scale::Tiny, 3)).tables
    }

    #[test]
    fn four_standard_workloads() {
        let specs = standard_workloads(&tables());
        assert_eq!(specs.len(), 4);
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"]);
    }

    #[test]
    fn invocation_mixes_sum_to_one() {
        for w in StandardWorkload::ALL {
            let sum: f64 = w.invocation_mix().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} sums to {sum}", w.name());
        }
    }

    #[test]
    fn dispatch_weights_match_arity_and_normalize() {
        let t = tables();
        for spec in standard_workloads(&t) {
            for (table, arity) in [
                (t.interrupt, t.interrupt_arity),
                (t.fault, t.fault_arity),
                (t.syscall, t.syscall_arity),
                (t.other, t.other_arity),
            ] {
                let w = spec.dispatch(table).expect("table weighted");
                assert_eq!(w.len(), arity);
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                assert!(w.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn shell_has_no_app() {
        let t = tables();
        let shell = StandardWorkload::Shell.spec(&t);
        assert!(!shell.has_app());
        assert!(StandardWorkload::Shell.app_components().is_empty());
        let trfd = StandardWorkload::Trfd4.spec(&t);
        assert!(trfd.has_app());
    }

    #[test]
    fn syscall_profiles_prefer_their_calls() {
        let w = SyscallProfile::FileHeavy.weights(36);
        assert!(w[sc::READ] > w[sc::GETPID]);
        let w = SyscallProfile::ShellBroad.weights(36);
        assert!(w[sc::FORK] > w[sc::LSEEK]);
        let w = SyscallProfile::Uniform.weights(10);
        assert!((w[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn weights_work_for_small_tables() {
        for profile in [
            SyscallProfile::Uniform,
            SyscallProfile::FileHeavy,
            SyscallProfile::ScientificIo,
            SyscallProfile::ShellBroad,
        ] {
            let w = profile.weights(6);
            assert_eq!(w.len(), 6);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
