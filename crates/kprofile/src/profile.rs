//! The weighted basic-block flow graph.

use std::collections::HashMap;

use oslay_model::{BlockId, Domain, Program, SeedKind};

/// One measured arc of the flow graph.
///
/// Arcs cover every kind of control transfer the paper's graph includes:
/// conditional and unconditional branches, fall-throughs, procedure calls
/// (caller block → callee entry) and returns (returning block → caller's
/// continuation).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ArcRecord {
    /// Source block.
    pub src: BlockId,
    /// Destination block.
    pub dst: BlockId,
    /// Number of times the transition was observed.
    pub count: u64,
}

/// A measured execution profile of one program under one or more traces.
///
/// Node weights are block execution counts; arc weights are transition
/// counts. Unexecuted blocks simply have weight zero (the paper prunes
/// them; here pruning is implicit — iterate [`Profile::executed_blocks`]).
#[derive(Clone, Debug)]
pub struct Profile {
    pub(crate) domain: Domain,
    pub(crate) num_blocks: usize,
    pub(crate) node: Vec<u64>,
    pub(crate) arcs: HashMap<(BlockId, BlockId), u64>,
    pub(crate) out_adj: Vec<Vec<(BlockId, u64)>>,
    pub(crate) routine_invocations: Vec<u64>,
    pub(crate) seed_invocations: [u64; 4],
    pub(crate) total_node_weight: u64,
}

impl Profile {
    /// Creates an empty profile shaped for `program`.
    #[must_use]
    pub fn empty(program: &Program) -> Self {
        Self {
            domain: program.domain(),
            num_blocks: program.num_blocks(),
            node: vec![0; program.num_blocks()],
            arcs: HashMap::new(),
            out_adj: vec![Vec::new(); program.num_blocks()],
            routine_invocations: vec![0; program.num_routines()],
            seed_invocations: [0; 4],
            total_node_weight: 0,
        }
    }

    /// The domain of the profiled program.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of blocks in the profiled program.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Execution count of a block.
    #[must_use]
    pub fn node_weight(&self, block: BlockId) -> u64 {
        self.node[block.index()]
    }

    /// Sum of all block execution counts.
    #[must_use]
    pub fn total_node_weight(&self) -> u64 {
        self.total_node_weight
    }

    /// A block's weight as a fraction of the total (compared against
    /// `ExecThresh` by the sequence builder).
    #[must_use]
    pub fn exec_ratio(&self, block: BlockId) -> f64 {
        if self.total_node_weight == 0 {
            return 0.0;
        }
        self.node_weight(block) as f64 / self.total_node_weight as f64
    }

    /// Measured count of the `src → dst` transition.
    #[must_use]
    pub fn arc_weight(&self, src: BlockId, dst: BlockId) -> u64 {
        self.arcs.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Probability that leaving `src` goes to `dst` (arc weight over source
    /// node weight; compared against `BranchThresh`).
    #[must_use]
    pub fn arc_prob(&self, src: BlockId, dst: BlockId) -> f64 {
        let n = self.node_weight(src);
        if n == 0 {
            return 0.0;
        }
        self.arc_weight(src, dst) as f64 / n as f64
    }

    /// Out-arcs of a block, heaviest first.
    #[must_use]
    pub fn out_arcs(&self, block: BlockId) -> &[(BlockId, u64)] {
        &self.out_adj[block.index()]
    }

    /// All measured arcs, in unspecified order.
    pub fn arcs(&self) -> impl Iterator<Item = ArcRecord> + '_ {
        self.arcs
            .iter()
            .map(|(&(src, dst), &count)| ArcRecord { src, dst, count })
    }

    /// Blocks with nonzero weight.
    pub fn executed_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.node
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, _)| BlockId::new(i))
    }

    /// Number of executed (weight > 0) blocks.
    #[must_use]
    pub fn num_executed_blocks(&self) -> usize {
        self.node.iter().filter(|&&w| w > 0).count()
    }

    /// Total bytes of executed code (Table 1, "Size of Executed OS Code").
    #[must_use]
    pub fn executed_bytes(&self, program: &Program) -> u64 {
        assert_eq!(program.num_blocks(), self.num_blocks, "program mismatch");
        self.executed_blocks()
            .map(|b| u64::from(program.block(b).size()))
            .sum()
    }

    /// Number of times a routine was invoked (entered through a call or as
    /// an invocation seed).
    #[must_use]
    pub fn routine_invocations(&self, routine: oslay_model::RoutineId) -> u64 {
        self.routine_invocations[routine.index()]
    }

    /// Total routine invocations across the program.
    #[must_use]
    pub fn total_routine_invocations(&self) -> u64 {
        self.routine_invocations.iter().sum()
    }

    /// Number of routines invoked at least once.
    #[must_use]
    pub fn num_invoked_routines(&self) -> usize {
        self.routine_invocations.iter().filter(|&&n| n > 0).count()
    }

    /// OS invocations by seed class (zero for application profiles).
    #[must_use]
    pub fn seed_invocations(&self, kind: SeedKind) -> u64 {
        self.seed_invocations[kind.index()]
    }

    /// Accumulates another profile of the same program into this one.
    ///
    /// The paper builds its layouts "after taking the average of the
    /// profiles of all the workloads"; summation is equivalent to averaging
    /// for every ratio-based decision the algorithms make.
    ///
    /// # Panics
    ///
    /// Panics if the profiles describe different programs.
    pub fn merge(&mut self, other: &Profile) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        assert_eq!(self.num_blocks, other.num_blocks, "program mismatch");
        for (a, b) in self.node.iter_mut().zip(&other.node) {
            *a += b;
        }
        for (&k, &v) in &other.arcs {
            *self.arcs.entry(k).or_insert(0) += v;
        }
        for (a, b) in self
            .routine_invocations
            .iter_mut()
            .zip(&other.routine_invocations)
        {
            *a += b;
        }
        for (a, b) in self
            .seed_invocations
            .iter_mut()
            .zip(&other.seed_invocations)
        {
            *a += b;
        }
        self.total_node_weight += other.total_node_weight;
        self.rebuild_adjacency();
    }

    /// Merges many profiles into one (the paper's averaged profile).
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the profiles describe different
    /// programs.
    #[must_use]
    pub fn merge_all(profiles: &[Profile]) -> Profile {
        let first = profiles.first().expect("need at least one profile");
        let mut acc = first.clone();
        for p in &profiles[1..] {
            acc.merge(p);
        }
        acc
    }

    pub(crate) fn rebuild_adjacency(&mut self) {
        for v in &mut self.out_adj {
            v.clear();
        }
        for (&(src, dst), &count) in &self.arcs {
            self.out_adj[src.index()].push((dst, count));
        }
        for v in &mut self.out_adj {
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::{Domain, ProgramBuilder, SeedKind, Terminator};

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new(Domain::Os);
        let r = b.begin_routine("f");
        let x = b.add_block(8);
        let y = b.add_block(8);
        b.terminate(x, Terminator::Jump(y));
        b.terminate(y, Terminator::Return);
        b.end_routine();
        for kind in SeedKind::ALL {
            b.set_seed(kind, r);
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = two_block_program();
        let prof = Profile::empty(&p);
        assert_eq!(prof.total_node_weight(), 0);
        assert_eq!(prof.num_executed_blocks(), 0);
        assert_eq!(prof.exec_ratio(BlockId::new(0)), 0.0);
        assert_eq!(prof.arc_prob(BlockId::new(0), BlockId::new(1)), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let p = two_block_program();
        let mut a = Profile::empty(&p);
        a.node[0] = 3;
        a.total_node_weight = 3;
        a.arcs.insert((BlockId::new(0), BlockId::new(1)), 2);
        a.rebuild_adjacency();
        let mut b = Profile::empty(&p);
        b.node[0] = 5;
        b.total_node_weight = 5;
        b.arcs.insert((BlockId::new(0), BlockId::new(1)), 4);
        b.rebuild_adjacency();
        a.merge(&b);
        assert_eq!(a.node_weight(BlockId::new(0)), 8);
        assert_eq!(a.arc_weight(BlockId::new(0), BlockId::new(1)), 6);
        assert_eq!(a.total_node_weight(), 8);
        assert_eq!(a.out_arcs(BlockId::new(0)), &[(BlockId::new(1), 6)]);
    }

    #[test]
    fn merge_all_equals_sequential_merges() {
        let p = two_block_program();
        let mut a = Profile::empty(&p);
        a.node[1] = 1;
        a.total_node_weight = 1;
        let b = a.clone();
        let merged = Profile::merge_all(&[a.clone(), b]);
        assert_eq!(merged.node_weight(BlockId::new(1)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn merge_all_empty_panics() {
        let _ = Profile::merge_all(&[]);
    }
}
