//! Natural-loop detection and loop behaviour measurement.
//!
//! Section 3.2.2 of the paper divides the kernel's loops into those that do
//! not call procedures (small, shallow, easily cached) and those that do
//! (shallow but spanning kilobytes of callees). This module finds natural
//! loops via back edges over the dominator tree, merges loops sharing a
//! head, and measures — from the profile, not from ground truth — each
//! loop's entries, iterations per invocation, executed body size, and
//! executed span including the call closure.

use std::collections::{HashMap, HashSet};

use oslay_model::{BlockId, Program, RoutineId, Terminator};

use crate::{CallGraph, Dominators, Profile};

/// One natural loop (all back edges to a common head merged).
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Containing routine.
    pub routine: RoutineId,
    /// Loop-head block (the back-edge target).
    pub head: BlockId,
    /// Body blocks, including the head, sorted by id.
    pub body: Vec<BlockId>,
    /// True if any body block is a call site (the paper's
    /// "loops with procedure calls").
    pub has_calls: bool,
    /// Measured entries into the loop (arc traversals into the head from
    /// outside the body).
    pub entries: u64,
    /// Measured executions of the head block.
    pub head_executions: u64,
    /// Bytes of body code executed at least once.
    pub executed_body_bytes: u64,
    /// Executed span: body bytes plus executed bytes of every routine in
    /// the call closure of the body's call sites (Figure 5's
    /// "static size ... including the routines they call and their
    /// descendants").
    pub executed_span_bytes: u64,
}

impl NaturalLoop {
    /// Average iterations per invocation (head executions per entry).
    ///
    /// Loops that were never entered report 0.
    #[must_use]
    pub fn iterations_per_entry(&self) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        self.head_executions as f64 / self.entries as f64
    }

    /// True if the loop body executed at least once.
    #[must_use]
    pub fn is_executed(&self) -> bool {
        self.head_executions > 0
    }
}

/// Loop structure of one program under one profile.
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    loops: Vec<NaturalLoop>,
    /// For each block, the index of its innermost (smallest) containing
    /// executed loop.
    innermost: HashMap<BlockId, usize>,
    /// Per-block multiplier that converts execution counts into
    /// loop-flattened counts ("we assume that loops only perform one
    /// iteration per invocation", Section 4.2).
    flatten: Vec<f64>,
}

impl LoopAnalysis {
    /// Detects loops and measures their behaviour.
    #[must_use]
    pub fn analyze(program: &Program, profile: &Profile) -> Self {
        let call_graph = CallGraph::compute(program, profile);
        let mut exec_routine_bytes = vec![0u64; program.num_routines()];
        for (id, block) in program.blocks() {
            if profile.node_weight(id) > 0 {
                exec_routine_bytes[block.routine().index()] += u64::from(block.size());
            }
        }

        // In-arc weights per block, for entry counting.
        let mut in_arcs: HashMap<BlockId, Vec<(BlockId, u64)>> = HashMap::new();
        for arc in profile.arcs() {
            in_arcs
                .entry(arc.dst)
                .or_default()
                .push((arc.src, arc.count));
        }

        let mut loops = Vec::new();
        for routine in program.routines() {
            let dom = Dominators::compute(program, routine.id());
            // Collect back edges grouped by head.
            let mut by_head: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
            for &b in routine.blocks() {
                for succ in program.block(b).terminator().intra_successors() {
                    if dom.is_reachable(b) && dom.dominates(succ, b) {
                        by_head.entry(succ).or_default().push(b);
                    }
                }
            }
            for (head, tails) in by_head {
                let body = natural_loop_body(program, head, &tails);
                let body_set: HashSet<BlockId> = body.iter().copied().collect();
                let has_calls = body
                    .iter()
                    .any(|&b| matches!(program.block(b).terminator(), Terminator::Call { .. }));
                let entries = in_arcs
                    .get(&head)
                    .map(|preds| {
                        preds
                            .iter()
                            .filter(|(src, _)| !body_set.contains(src))
                            .map(|&(_, w)| w)
                            .sum()
                    })
                    .unwrap_or(0);
                let executed_body_bytes = body
                    .iter()
                    .filter(|&&b| profile.node_weight(b) > 0)
                    .map(|&b| u64::from(program.block(b).size()))
                    .sum();
                let callees: Vec<RoutineId> = body
                    .iter()
                    .filter_map(|&b| match program.block(b).terminator() {
                        Terminator::Call { callee, .. } if profile.node_weight(b) > 0 => {
                            Some(*callee)
                        }
                        _ => None,
                    })
                    .collect();
                let closure = call_graph.executed_closure(&callees);
                let executed_span_bytes = executed_body_bytes
                    + closure
                        .iter()
                        .map(|r| exec_routine_bytes[r.index()])
                        .sum::<u64>();
                loops.push(NaturalLoop {
                    routine: routine.id(),
                    head,
                    body,
                    has_calls,
                    entries,
                    head_executions: profile.node_weight(head),
                    executed_body_bytes,
                    executed_span_bytes,
                });
            }
        }
        // Deterministic order: by routine, then head.
        loops.sort_by_key(|l| (l.routine, l.head));

        // Innermost containing loop per block: smallest body wins.
        let mut innermost: HashMap<BlockId, usize> = HashMap::new();
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(loops[i].body.len()));
        for &i in &order {
            for &b in &loops[i].body {
                innermost.insert(b, i);
            }
        }

        // Flatten factors: each executed enclosing loop contributes
        // entries / head_executions (≤ 1).
        let mut flatten = vec![1.0f64; profile.num_blocks()];
        for l in &loops {
            if !l.is_executed() || l.entries == 0 {
                continue;
            }
            let f = l.entries as f64 / l.head_executions as f64;
            for &b in &l.body {
                flatten[b.index()] *= f.min(1.0);
            }
        }

        Self {
            loops,
            innermost,
            flatten,
        }
    }

    /// All detected loops (executed or not).
    #[must_use]
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Loops whose body executed at least once.
    pub fn executed_loops(&self) -> impl Iterator<Item = &NaturalLoop> {
        self.loops.iter().filter(|l| l.is_executed())
    }

    /// The innermost executed loop containing `block`, if any.
    #[must_use]
    pub fn innermost(&self, block: BlockId) -> Option<&NaturalLoop> {
        self.innermost.get(&block).map(|&i| &self.loops[i])
    }

    /// True if `block` belongs to any loop body.
    #[must_use]
    pub fn in_loop(&self, block: BlockId) -> bool {
        self.innermost.contains_key(&block)
    }

    /// Execution count of `block` with every enclosing loop flattened to
    /// one iteration per invocation — the count used to choose
    /// SelfConfFree residents (Section 4.2) and to rank blocks in Figure 8.
    #[must_use]
    pub fn flattened_weight(&self, block: BlockId, profile: &Profile) -> f64 {
        profile.node_weight(block) as f64 * self.flatten[block.index()]
    }
}

/// Standard natural-loop body: `head` plus all blocks that reach a tail
/// without passing through `head` (computed by reverse traversal from the
/// tails).
fn natural_loop_body(program: &Program, head: BlockId, tails: &[BlockId]) -> Vec<BlockId> {
    // Build intra-routine predecessor lists lazily for the routine.
    let routine = program.block(head).routine();
    let r = program.routine(routine);
    let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for &b in r.blocks() {
        for s in program.block(b).terminator().intra_successors() {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut body: HashSet<BlockId> = HashSet::new();
    body.insert(head);
    let mut stack: Vec<BlockId> = Vec::new();
    for &t in tails {
        if body.insert(t) {
            stack.push(t);
        }
    }
    while let Some(b) = stack.pop() {
        if let Some(ps) = preds.get(&b) {
            for &p in ps {
                if body.insert(p) {
                    stack.push(p);
                }
            }
        }
    }
    let mut v: Vec<BlockId> = body.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 17));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(5)).run(60_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p)
    }

    #[test]
    fn kernel_has_both_loop_kinds() {
        let (program, profile) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        let executed: Vec<_> = la.executed_loops().collect();
        assert!(!executed.is_empty(), "no executed loops found");
        assert!(executed.iter().any(|l| !l.has_calls), "no call-free loops");
    }

    #[test]
    fn bzero_loop_iterates_many_times() {
        let (program, profile) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        let bzero = program.routine_by_name("bzero").unwrap().id();
        let l = la
            .executed_loops()
            .find(|l| l.routine == bzero)
            .expect("bzero loop executed");
        // Generated with mean 32 iterations; measurement should land in a
        // generous band around it.
        let iters = l.iterations_per_entry();
        assert!((10.0..80.0).contains(&iters), "bzero iters {iters}");
        assert!(!l.has_calls);
    }

    #[test]
    fn body_contains_head_and_respects_size() {
        let (program, profile) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        for l in la.loops() {
            assert!(l.body.contains(&l.head));
            assert!(l.executed_body_bytes <= l.executed_span_bytes);
            // All body blocks belong to the loop's routine.
            for &b in &l.body {
                assert_eq!(program.block(b).routine(), l.routine);
            }
        }
    }

    #[test]
    fn call_loops_span_more_than_their_body() {
        let (program, profile) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        let with_calls: Vec<_> = la
            .executed_loops()
            .filter(|l| l.has_calls && l.entries > 0)
            .collect();
        if let Some(l) = with_calls.first() {
            assert!(l.executed_span_bytes > l.executed_body_bytes);
        }
    }

    #[test]
    fn flattened_weight_is_at_most_raw_weight() {
        let (program, profile) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        for b in profile.executed_blocks() {
            let raw = profile.node_weight(b) as f64;
            let flat = la.flattened_weight(b, &profile);
            assert!(flat <= raw + 1e-9);
            assert!(flat >= 0.0);
        }
    }

    #[test]
    fn loop_blocks_are_flattened_below_raw() {
        let (program, profile) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        let bzero = program.routine_by_name("bzero").unwrap().id();
        let l = la
            .executed_loops()
            .find(|l| l.routine == bzero)
            .expect("bzero loop");
        let head_raw = profile.node_weight(l.head) as f64;
        let head_flat = la.flattened_weight(l.head, &profile);
        assert!(
            head_flat < head_raw / 2.0,
            "flattening should shrink a 32-iteration loop head"
        );
    }
}
