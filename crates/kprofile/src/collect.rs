//! Building profiles from block-level traces.

use oslay_model::{BlockId, Domain, Program, Terminator};
use oslay_trace::{Trace, TraceEvent};

use crate::Profile;

impl Profile {
    /// Collects a profile of `program` from one trace.
    ///
    /// Only events in the program's domain contribute. For the operating
    /// system, arcs are counted *within* invocations (an invocation boundary
    /// is not a control transfer); for applications, arcs span OS
    /// invocations because the application walk resumes exactly where it
    /// was suspended.
    ///
    /// # Panics
    ///
    /// Panics if the trace references block ids outside `program`.
    #[must_use]
    pub fn collect(program: &Program, trace: &Trace) -> Profile {
        let mut profile = Profile::empty(program);
        profile.add_trace(program, trace);
        profile
    }

    /// Collects one merged profile from several traces (the paper's
    /// averaged multi-workload profile).
    #[must_use]
    pub fn collect_many<'a>(
        program: &Program,
        traces: impl IntoIterator<Item = &'a Trace>,
    ) -> Profile {
        let mut profile = Profile::empty(program);
        for trace in traces {
            profile.add_trace(program, trace);
        }
        profile
    }

    /// Accumulates one more trace into this profile.
    ///
    /// # Panics
    ///
    /// Panics if the trace references block ids outside `program`.
    pub fn add_trace(&mut self, program: &Program, trace: &Trace) {
        assert_eq!(program.num_blocks(), self.num_blocks, "program mismatch");
        let domain = self.domain;
        let mut prev: Option<BlockId> = None;
        let mut invocation_start = false;
        for event in trace.events() {
            match *event {
                TraceEvent::OsEnter(kind) => {
                    if domain == Domain::Os {
                        self.seed_invocations[kind.index()] += 1;
                        prev = None;
                        invocation_start = true;
                    }
                }
                TraceEvent::OsExit => {
                    if domain == Domain::Os {
                        prev = None;
                    }
                }
                // Diagnostic markers carry no execution to profile.
                TraceEvent::Mark(_) => {}
                TraceEvent::Block { id, domain: d } => {
                    if d != domain {
                        continue;
                    }
                    assert!(
                        id.index() < self.num_blocks,
                        "trace block {id} out of range for program"
                    );
                    self.node[id.index()] += 1;
                    self.total_node_weight += 1;
                    if let Some(p) = prev {
                        *self.arcs.entry((p, id)).or_insert(0) += 1;
                        // A call transition invokes the callee routine.
                        if let Terminator::Call { callee, .. } = program.block(p).terminator() {
                            if program.routine(*callee).entry() == id {
                                self.routine_invocations[callee.index()] += 1;
                            }
                        }
                    } else if invocation_start
                        || (domain == Domain::App && self.total_node_weight == 1)
                    {
                        // Seed entry (OS) or the application's first block:
                        // an invocation of the containing routine.
                        let routine = program.block(id).routine();
                        self.routine_invocations[routine.index()] += 1;
                        invocation_start = false;
                    }
                    prev = Some(id);
                }
            }
        }
        self.rebuild_adjacency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{
        generate_app_mix, generate_kernel, AppKind, AppParams, KernelParams, Scale,
    };
    use oslay_model::SeedKind;
    use oslay_trace::{standard_workloads, Engine, EngineConfig, StandardWorkload};

    fn kernel() -> oslay_model::synth::SyntheticKernel {
        generate_kernel(&KernelParams::at_scale(Scale::Tiny, 21))
    }

    fn shell_trace(k: &oslay_model::synth::SyntheticKernel, blocks: u64) -> Trace {
        let specs = standard_workloads(&k.tables);
        Engine::new(&k.program, None, &specs[3], EngineConfig::new(2)).run(blocks)
    }

    #[test]
    fn node_weights_sum_to_os_blocks() {
        let k = kernel();
        let t = shell_trace(&k, 20_000);
        let p = Profile::collect(&k.program, &t);
        assert_eq!(p.total_node_weight(), t.os_blocks());
    }

    #[test]
    fn out_arc_weights_do_not_exceed_node_weight() {
        let k = kernel();
        let t = shell_trace(&k, 20_000);
        let p = Profile::collect(&k.program, &t);
        for b in p.executed_blocks() {
            let out: u64 = p.out_arcs(b).iter().map(|&(_, w)| w).sum();
            assert!(
                out <= p.node_weight(b),
                "block {b}: out {out} > node {}",
                p.node_weight(b)
            );
        }
    }

    #[test]
    fn seed_invocations_match_trace() {
        let k = kernel();
        let t = shell_trace(&k, 20_000);
        let p = Profile::collect(&k.program, &t);
        for kind in SeedKind::ALL {
            assert_eq!(p.seed_invocations(kind), t.invocations(kind));
        }
    }

    #[test]
    fn only_a_fraction_of_the_kernel_is_executed() {
        let k = kernel();
        let t = shell_trace(&k, 30_000);
        let p = Profile::collect(&k.program, &t);
        let frac = p.num_executed_blocks() as f64 / k.program.num_blocks() as f64;
        assert!(frac > 0.01, "executed fraction {frac} suspiciously low");
        assert!(frac < 0.9, "executed fraction {frac} suspiciously high");
    }

    #[test]
    fn hot_utilities_have_many_invocations() {
        let k = kernel();
        let t = shell_trace(&k, 40_000);
        let p = Profile::collect(&k.program, &t);
        let trans = k.program.routine_by_name("usr_sys_trans").unwrap().id();
        assert!(p.routine_invocations(trans) > 20);
    }

    #[test]
    fn app_profile_counts_app_blocks_only() {
        let k = kernel();
        let specs = standard_workloads(&k.tables);
        let app = generate_app_mix(
            &[(AppKind::Scientific, 1.0)],
            &AppParams::new(1).with_scale(0.3),
        );
        let t = Engine::new(&k.program, Some(&app), &specs[0], EngineConfig::new(3)).run(15_000);
        let os_prof = Profile::collect(&k.program, &t);
        let app_prof = Profile::collect(&app, &t);
        assert_eq!(os_prof.total_node_weight(), t.os_blocks());
        assert_eq!(app_prof.total_node_weight(), t.app_blocks());
        assert_eq!(app_prof.seed_invocations(SeedKind::Interrupt), 0);
        // The scientific app's inner loop dominates its own profile.
        let inner = app.routine_by_name("sci0_dgemm_inner").unwrap();
        assert!(app_prof.routine_invocations(inner.id()) > 0);
    }

    #[test]
    fn collect_many_equals_two_adds() {
        let k = kernel();
        let t1 = shell_trace(&k, 5_000);
        let t2 = shell_trace(&k, 5_000);
        let merged = Profile::collect_many(&k.program, [&t1, &t2]);
        let mut manual = Profile::collect(&k.program, &t1);
        manual.add_trace(&k.program, &t2);
        assert_eq!(merged.total_node_weight(), manual.total_node_weight());
        assert_eq!(
            merged.total_routine_invocations(),
            manual.total_routine_invocations()
        );
    }

    #[test]
    fn standard_workload_names_stable() {
        // Guards the index used by `shell_trace` above.
        assert_eq!(StandardWorkload::ALL[3].name(), "Shell");
    }
}
