//! Profiling for the `oslay` reproduction.
//!
//! This crate turns block-level traces into the data structures the paper's
//! placement algorithms consume (Section 4): a **weighted basic-block flow
//! graph** `G = {V, E}` whose node and arc weights are measured execution
//! counts, with unexecuted nodes and arcs pruned; **routine-level**
//! statistics (invocation counts, a weighted call graph); and **natural
//! loops** found by classic dataflow analysis (dominators + back edges,
//! following Aho, Sethi & Ullman), split into loops with and without
//! procedure calls as in Section 3.2.2.
//!
//! Everything here is *measurement*: no ground-truth probabilities from the
//! synthetic generator are visible, only what the trace shows — exactly the
//! information the original tooling extracted from hardware traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collect;
mod dominators;
mod natural_loops;
mod profile;
mod routines;

pub use dominators::Dominators;
pub use natural_loops::{LoopAnalysis, NaturalLoop};
pub use profile::{ArcRecord, Profile};
pub use routines::{CallGraph, RoutineStats};
