//! Routine-level statistics and the weighted call graph.

use std::collections::{BTreeMap, HashSet};

use oslay_model::{Program, RoutineId, Terminator};

use crate::Profile;

/// Measured routine-level statistics.
#[derive(Clone, Debug)]
pub struct RoutineStats {
    invocations: Vec<u64>,
    executed_bytes: Vec<u64>,
}

impl RoutineStats {
    /// Computes per-routine statistics from a profile.
    #[must_use]
    pub fn compute(program: &Program, profile: &Profile) -> Self {
        let mut executed_bytes = vec![0u64; program.num_routines()];
        for (id, block) in program.blocks() {
            if profile.node_weight(id) > 0 {
                executed_bytes[block.routine().index()] += u64::from(block.size());
            }
        }
        let invocations = (0..program.num_routines())
            .map(|i| profile.routine_invocations(RoutineId::new(i)))
            .collect();
        Self {
            invocations,
            executed_bytes,
        }
    }

    /// Times this routine was invoked.
    #[must_use]
    pub fn invocations(&self, routine: RoutineId) -> u64 {
        self.invocations[routine.index()]
    }

    /// Bytes of this routine's code executed at least once.
    #[must_use]
    pub fn executed_bytes(&self, routine: RoutineId) -> u64 {
        self.executed_bytes[routine.index()]
    }

    /// Routines sorted most-invoked first (the paper's Figure 6 ranking),
    /// excluding never-invoked routines.
    #[must_use]
    pub fn ranked_by_invocations(&self) -> Vec<(RoutineId, u64)> {
        let mut v: Vec<(RoutineId, u64)> = self
            .invocations
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (RoutineId::new(i), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of routines invoked at least once.
    #[must_use]
    pub fn num_invoked(&self) -> usize {
        self.invocations.iter().filter(|&&n| n > 0).count()
    }
}

/// The measured, weighted call graph: `caller → callee` with the number of
/// observed call transitions.
#[derive(Clone, Debug)]
pub struct CallGraph {
    edges: BTreeMap<(RoutineId, RoutineId), u64>,
    callees: Vec<Vec<(RoutineId, u64)>>,
    callers: Vec<Vec<(RoutineId, u64)>>,
}

impl CallGraph {
    /// Builds the call graph from measured call-arc traversals.
    #[must_use]
    pub fn compute(program: &Program, profile: &Profile) -> Self {
        let mut edges: BTreeMap<(RoutineId, RoutineId), u64> = BTreeMap::new();
        for (id, block) in program.blocks() {
            if let Terminator::Call { callee, .. } = block.terminator() {
                let entry = program.routine(*callee).entry();
                let w = profile.arc_weight(id, entry);
                if w > 0 {
                    *edges.entry((block.routine(), *callee)).or_insert(0) += w;
                }
            }
        }
        let n = program.num_routines();
        let mut callees: Vec<Vec<(RoutineId, u64)>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<(RoutineId, u64)>> = vec![Vec::new(); n];
        for (&(from, to), &w) in &edges {
            callees[from.index()].push((to, w));
            callers[to.index()].push((from, w));
        }
        for v in callees.iter_mut().chain(callers.iter_mut()) {
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        Self {
            edges,
            callees,
            callers,
        }
    }

    /// All edges (caller, callee, weight), heaviest first.
    #[must_use]
    pub fn edges_by_weight(&self) -> Vec<(RoutineId, RoutineId, u64)> {
        let mut v: Vec<_> = self.edges.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
        v
    }

    /// Observed call count from `caller` to `callee`.
    #[must_use]
    pub fn weight(&self, caller: RoutineId, callee: RoutineId) -> u64 {
        self.edges.get(&(caller, callee)).copied().unwrap_or(0)
    }

    /// Routines called by `routine`, heaviest first.
    #[must_use]
    pub fn callees(&self, routine: RoutineId) -> &[(RoutineId, u64)] {
        &self.callees[routine.index()]
    }

    /// Routines calling `routine`, heaviest first.
    #[must_use]
    pub fn callers(&self, routine: RoutineId) -> &[(RoutineId, u64)] {
        &self.callers[routine.index()]
    }

    /// The set of routines transitively callable from `roots` (inclusive),
    /// following only observed (executed) call edges.
    #[must_use]
    pub fn executed_closure(&self, roots: &[RoutineId]) -> HashSet<RoutineId> {
        let mut seen: HashSet<RoutineId> = HashSet::new();
        let mut stack: Vec<RoutineId> = roots.to_vec();
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            for &(callee, _) in self.callees(r) {
                if !seen.contains(&callee) {
                    stack.push(callee);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 33));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(4)).run(30_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p)
    }

    #[test]
    fn ranked_invocations_descend() {
        let (program, profile) = setup();
        let stats = RoutineStats::compute(&program, &profile);
        let ranked = stats.ranked_by_invocations();
        assert!(!ranked.is_empty());
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(ranked.len(), stats.num_invoked());
    }

    #[test]
    fn call_graph_edges_are_symmetric_views() {
        let (program, profile) = setup();
        let cg = CallGraph::compute(&program, &profile);
        for (a, b, w) in cg.edges_by_weight() {
            assert_eq!(cg.weight(a, b), w);
            assert!(cg.callees(a).iter().any(|&(r, x)| r == b && x == w));
            assert!(cg.callers(b).iter().any(|&(r, x)| r == a && x == w));
        }
    }

    #[test]
    fn seed_services_call_the_transition_routines() {
        let (program, profile) = setup();
        let cg = CallGraph::compute(&program, &profile);
        let sc = program.routine_by_name("sc_entry").unwrap().id();
        let trans = program.routine_by_name("usr_sys_trans").unwrap().id();
        assert!(cg.weight(sc, trans) > 0, "sc_entry must call usr_sys_trans");
    }

    #[test]
    fn closure_contains_roots_and_descendants() {
        let (program, profile) = setup();
        let cg = CallGraph::compute(&program, &profile);
        let sc = program.routine_by_name("sc_entry").unwrap().id();
        let closure = cg.executed_closure(&[sc]);
        assert!(closure.contains(&sc));
        let trans = program.routine_by_name("usr_sys_trans").unwrap().id();
        assert!(closure.contains(&trans));
        // Closure must be closed under callees.
        for &r in &closure {
            for &(c, _) in cg.callees(r) {
                assert!(closure.contains(&c));
            }
        }
    }

    #[test]
    fn executed_bytes_bounded_by_routine_size() {
        let (program, profile) = setup();
        let stats = RoutineStats::compute(&program, &profile);
        for r in program.routines() {
            let total: u64 = r
                .blocks()
                .iter()
                .map(|&b| u64::from(program.block(b).size()))
                .sum();
            assert!(stats.executed_bytes(r.id()) <= total);
        }
    }
}
