//! Per-routine dominator trees.
//!
//! The loop detection of Section 3.2.2 ("to identify the loops, we use
//! dataflow analysis [2]") needs dominators: a back edge is an arc `u → v`
//! where `v` dominates `u`. We use the iterative algorithm of Cooper,
//! Harvey & Kennedy over the routine's static intra-procedural CFG (call
//! terminators fall through to their continuation block).

use std::collections::HashMap;

use oslay_model::{BlockId, Program, RoutineId};

/// Dominator tree of one routine.
#[derive(Clone, Debug)]
pub struct Dominators {
    routine: RoutineId,
    blocks: Vec<BlockId>,
    local: HashMap<BlockId, usize>,
    /// Immediate dominator in local indices; `idom[entry] == entry`.
    idom: Vec<usize>,
    reachable: Vec<bool>,
}

impl Dominators {
    /// Computes dominators for `routine`'s intra-procedural CFG.
    #[must_use]
    pub fn compute(program: &Program, routine: RoutineId) -> Self {
        let r = program.routine(routine);
        let blocks: Vec<BlockId> = r.blocks().to_vec();
        let local: HashMap<BlockId, usize> =
            blocks.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let n = blocks.len();
        let entry = local[&r.entry()];

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &b) in blocks.iter().enumerate() {
            for s in program.block(b).terminator().intra_successors() {
                if let Some(&j) = local.get(&s) {
                    succs[i].push(j);
                }
            }
        }

        // Reverse postorder from the entry.
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack = vec![(entry, 0usize)];
        visited[entry] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < succs[node].len() {
                let s = succs[node][*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder
        let mut rpo_number = vec![usize::MAX; n];
        for (rank, &node) in order.iter().enumerate() {
            rpo_number[node] = rank;
        }

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }

        const UNDEF: usize = usize::MAX;
        let mut idom = vec![UNDEF; n];
        idom[entry] = entry;
        let intersect = |idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo[a] > rpo[b] {
                    a = idom[a];
                }
                while rpo[b] > rpo[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &order {
                if node == entry {
                    continue;
                }
                let mut new_idom = UNDEF;
                for &p in &preds[node] {
                    if idom[p] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p
                    } else {
                        intersect(&idom, &rpo_number, new_idom, p)
                    };
                }
                if new_idom != UNDEF && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        Self {
            routine,
            blocks,
            local,
            idom,
            reachable: visited,
        }
    }

    /// The routine this tree describes.
    #[must_use]
    pub fn routine(&self) -> RoutineId {
        self.routine
    }

    /// True if `block` is reachable from the routine entry.
    ///
    /// Unreachable code exists in real kernels (and in the synthetic one:
    /// cold tails that no detour happens to target); it has no dominator
    /// relationships.
    #[must_use]
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.local.get(&block).is_some_and(|&i| self.reachable[i])
    }

    /// Immediate dominator of `block` (the entry dominates itself).
    #[must_use]
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        let &i = self.local.get(&block)?;
        if !self.reachable[i] || self.idom[i] == usize::MAX {
            return None;
        }
        Some(self.blocks[self.idom[i]])
    }

    /// True if `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (Some(&ia), Some(&ib)) = (self.local.get(&a), self.local.get(&b)) else {
            return false;
        };
        if !self.reachable[ia] || !self.reachable[ib] {
            return false;
        }
        let mut cur = ib;
        loop {
            if cur == ia {
                return true;
            }
            let up = self.idom[cur];
            if up == cur || up == usize::MAX {
                return false;
            }
            cur = up;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::{BranchTarget, Domain, ProgramBuilder, SeedKind, Terminator};

    /// Diamond with a loop: e → a → (b | c) → d → a (back edge), d → x.
    fn looped_diamond() -> (Program, Vec<BlockId>, RoutineId) {
        let mut bld = ProgramBuilder::new(Domain::Os);
        let r = bld.begin_routine("f");
        let e = bld.add_block(8);
        let a = bld.add_block(8);
        let b = bld.add_block(8);
        let c = bld.add_block(8);
        let d = bld.add_block(8);
        let x = bld.add_block(8);
        bld.terminate(e, Terminator::Jump(a));
        bld.terminate(
            a,
            Terminator::branch([BranchTarget::new(b, 0.5), BranchTarget::new(c, 0.5)]),
        );
        bld.terminate(b, Terminator::Jump(d));
        bld.terminate(c, Terminator::Jump(d));
        bld.terminate(
            d,
            Terminator::branch([BranchTarget::new(a, 0.6), BranchTarget::new(x, 0.4)]),
        );
        bld.terminate(x, Terminator::Return);
        bld.end_routine();
        for kind in SeedKind::ALL {
            bld.set_seed(kind, r);
        }
        let p = bld.build().unwrap();
        (p, vec![e, a, b, c, d, x], r)
    }

    #[test]
    fn entry_dominates_everything() {
        let (p, blocks, r) = looped_diamond();
        let dom = Dominators::compute(&p, r);
        for &b in &blocks {
            assert!(dom.dominates(blocks[0], b));
            assert!(dom.is_reachable(b));
        }
    }

    #[test]
    fn join_is_dominated_by_branch_head_not_arms() {
        let (p, blocks, r) = looped_diamond();
        let dom = Dominators::compute(&p, r);
        let (a, b, c, d) = (blocks[1], blocks[2], blocks[3], blocks[4]);
        assert!(dom.dominates(a, d));
        assert!(!dom.dominates(b, d));
        assert!(!dom.dominates(c, d));
        assert_eq!(dom.idom(d), Some(a));
    }

    #[test]
    fn back_edge_target_dominates_source() {
        let (p, blocks, r) = looped_diamond();
        let dom = Dominators::compute(&p, r);
        // d → a is the back edge: a dominates d.
        assert!(dom.dominates(blocks[1], blocks[4]));
    }

    #[test]
    fn dominance_is_reflexive_and_antisymmetric() {
        let (p, blocks, r) = looped_diamond();
        let dom = Dominators::compute(&p, r);
        for &x in &blocks {
            assert!(dom.dominates(x, x));
        }
        assert!(!dom.dominates(blocks[4], blocks[1]));
    }

    #[test]
    fn unreachable_block_reported() {
        let mut bld = ProgramBuilder::new(Domain::Os);
        let r = bld.begin_routine("f");
        let e = bld.add_block(8);
        bld.terminate(e, Terminator::Return);
        let orphan = bld.add_block_no_fallthrough(8);
        bld.terminate(orphan, Terminator::Return);
        bld.end_routine();
        for kind in SeedKind::ALL {
            bld.set_seed(kind, r);
        }
        let p = bld.build().unwrap();
        let dom = Dominators::compute(&p, r);
        assert!(dom.is_reachable(e));
        assert!(!dom.is_reachable(orphan));
        assert_eq!(dom.idom(orphan), None);
        assert!(!dom.dominates(e, orphan));
    }
}
