//! The paper's simple execution-time model (Section 5.2, Figure 15-b).
//!
//! "To get a very rough idea of how these miss rate reductions might
//! translate into execution speed increases, we consider a machine where
//! references take 1 cycle, miss penalties are 10, 30, or 50 cycles,
//! respectively, data references are 30% the number of instruction
//! references, the data miss rate is 5%, and we neglect any slowdown due
//! to I/O activity." A 50-cycle instruction-miss penalty is comparable to
//! a 2-cluster DASH, where the kernel resides in one cluster only.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The only unsafe in the workspace lives in `alloc` (the counting
// `GlobalAlloc`); every unsafe operation there must sit in an explicit
// inner `unsafe {}` block with a `// SAFETY:` justification.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod history;
pub mod simbench;

/// The simple machine model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ExecTimeModel {
    /// Cycles lost per instruction-cache miss.
    pub miss_penalty: f64,
    /// Data references as a fraction of instruction references (0.3).
    pub data_ref_ratio: f64,
    /// Data-cache miss rate (0.05).
    pub data_miss_rate: f64,
    /// Cycles lost per data-cache miss (same as the instruction penalty in
    /// the paper's model).
    pub data_miss_penalty: f64,
}

impl ExecTimeModel {
    /// The paper's model with a given instruction-miss penalty (10, 30 or
    /// 50 cycles).
    #[must_use]
    pub fn paper(miss_penalty: f64) -> Self {
        Self {
            miss_penalty,
            data_ref_ratio: 0.3,
            data_miss_rate: 0.05,
            data_miss_penalty: miss_penalty,
        }
    }

    /// The three penalties the paper sweeps.
    pub const PAPER_PENALTIES: [f64; 3] = [10.0, 30.0, 50.0];

    /// Execution cycles per instruction reference for a given
    /// instruction-cache miss rate.
    #[must_use]
    pub fn cycles_per_instruction(&self, imiss_rate: f64) -> f64 {
        let instruction = 1.0 + self.miss_penalty * imiss_rate;
        let data = self.data_ref_ratio * (1.0 + self.data_miss_penalty * self.data_miss_rate);
        instruction + data
    }

    /// Estimated speedup of a layout with miss rate `optimized` over one
    /// with miss rate `base` (> 1 means faster).
    #[must_use]
    pub fn speedup(&self, base: f64, optimized: f64) -> f64 {
        self.cycles_per_instruction(base) / self.cycles_per_instruction(optimized)
    }

    /// Execution-time reduction as a percentage (the paper reports
    /// "execution time reductions in the order of 10-25%").
    #[must_use]
    pub fn time_reduction_percent(&self, base: f64, optimized: f64) -> f64 {
        (1.0 - self.cycles_per_instruction(optimized) / self.cycles_per_instruction(base)) * 100.0
    }
}

impl Default for ExecTimeModel {
    fn default() -> Self {
        Self::paper(30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::rng::Rng;

    #[test]
    fn zero_miss_rate_gives_base_cpi() {
        let m = ExecTimeModel::paper(30.0);
        // 1 (instr) + 0.3 * (1 + 30*0.05) = 1 + 0.3*2.5 = 1.75
        assert!((m.cycles_per_instruction(0.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn higher_miss_rate_costs_more() {
        let m = ExecTimeModel::paper(30.0);
        assert!(m.cycles_per_instruction(0.05) > m.cycles_per_instruction(0.01));
    }

    #[test]
    fn speedup_matches_paper_magnitudes() {
        // The paper's headline: a few-percent miss-rate reduction at a
        // 30-cycle penalty yields execution-time reductions of 10-25%.
        let m = ExecTimeModel::paper(30.0);
        // e.g. 6.75% → 3.0% miss rate:
        let red = m.time_reduction_percent(0.0675, 0.03);
        assert!((10.0..35.0).contains(&red), "reduction {red}%");
    }

    #[test]
    fn equal_rates_give_unity_speedup() {
        let m = ExecTimeModel::paper(50.0);
        assert!((m.speedup(0.02, 0.02) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn larger_penalty_amplifies_gain() {
        let gain = |p: f64| ExecTimeModel::paper(p).speedup(0.05, 0.01);
        assert!(gain(50.0) > gain(30.0));
        assert!(gain(30.0) > gain(10.0));
    }

    // Randomized properties over seeded deterministic draws: same
    // coverage as a property-testing framework, no external crate, and a
    // failure reproduces from the fixed seed alone.

    #[test]
    fn speedup_is_monotone_in_optimized_rate() {
        let mut rng = Rng::seed_from_u64(0xbe7f_0001);
        let m = ExecTimeModel::paper(30.0);
        for _ in 0..512 {
            let base = rng.gen_range(0.0f64..0.2);
            let a = rng.gen_range(0.0f64..0.2);
            let b = rng.gen_range(0.0f64..0.2);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            assert!(
                m.speedup(base, lo) >= m.speedup(base, hi),
                "speedup not monotone at base={base}, lo={lo}, hi={hi}"
            );
        }
    }

    #[test]
    fn time_reduction_sign_matches_improvement() {
        let mut rng = Rng::seed_from_u64(0xbe7f_0002);
        let m = ExecTimeModel::paper(10.0);
        for _ in 0..512 {
            let base = rng.gen_range(0.001f64..0.2);
            let opt = rng.gen_range(0.0f64..0.2);
            let red = m.time_reduction_percent(base, opt);
            if opt < base {
                assert!(red > 0.0, "base={base}, opt={opt}, red={red}");
            } else if opt > base {
                assert!(red < 0.0, "base={base}, opt={opt}, red={red}");
            }
        }
    }
}
