//! The bench history store and perf-trend regression gate.
//!
//! `bench_sim` appends one line per run to
//! `results/bench_history.jsonl` — machine fingerprint, git revision,
//! and per-case throughput/allocation figures — so the engine's perf
//! trajectory is a queryable series instead of a single overwritten
//! snapshot ([`crate::simbench`]'s `BENCH_sim.json`).
//!
//! [`trend_gate`] then compares the newest run against the **rolling
//! median** of comparable prior runs (same fingerprint, scale, and
//! thread count) and fails when any case's throughput drops below
//! tolerance. The comparison itself is delegated to
//! [`oslay_observe::compare`]: throughput is inverted to
//! nanoseconds-per-event so the checker's lower-is-better convention
//! applies unchanged. The median (not the last run) is the baseline so
//! one noisy sample can neither mask nor fake a regression.

use std::path::Path;

use oslay_observe::json::{self, JsonValue};
use oslay_observe::RunReport;

use crate::simbench::BenchReport;

/// One measured case in a history entry.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryCase {
    /// Case label (e.g. `stream_base`).
    pub name: String,
    /// Replay throughput, events per second.
    pub events_per_sec: f64,
    /// Allocator calls during the measured region.
    pub allocs: u64,
    /// Peak live heap bytes over the measured region.
    pub peak_bytes: u64,
}

/// One bench run in the history trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Seconds since the Unix epoch when the run finished.
    pub unix_secs: u64,
    /// Git revision of the working tree (`unknown` outside a checkout).
    pub git_rev: String,
    /// Machine fingerprint from [`machine_fingerprint`].
    pub fingerprint: String,
    /// Scale label (`tiny`/`small`/`paper`).
    pub scale: String,
    /// Worker threads the run used.
    pub threads: u64,
    /// The measured cases.
    pub cases: Vec<HistoryCase>,
}

impl HistoryEntry {
    /// Builds an entry from a finished bench report plus provenance.
    #[must_use]
    pub fn from_bench(
        report: &BenchReport,
        unix_secs: u64,
        git_rev: String,
        fingerprint: String,
    ) -> Self {
        Self {
            unix_secs,
            git_rev,
            fingerprint,
            scale: report.scale.clone(),
            threads: report.threads,
            cases: report
                .cases
                .iter()
                .map(|c| HistoryCase {
                    name: c.name.clone(),
                    events_per_sec: c.events_per_sec(),
                    allocs: c.allocs,
                    peak_bytes: c.peak_bytes,
                })
                .collect(),
        }
    }

    /// Throughput of a named case, if this run measured it.
    #[must_use]
    pub fn events_per_sec(&self, case: &str) -> Option<f64> {
        self.cases
            .iter()
            .find(|c| c.name == case)
            .map(|c| c.events_per_sec)
    }

    /// Serializes the entry as one compact JSON line (no newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_json_value().to_json()
    }

    /// The entry as a JSON object (the [`oslay_observe::jsonl`] row).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            (
                "unix_secs".to_owned(),
                JsonValue::Num(self.unix_secs as f64),
            ),
            ("git_rev".to_owned(), JsonValue::Str(self.git_rev.clone())),
            (
                "fingerprint".to_owned(),
                JsonValue::Str(self.fingerprint.clone()),
            ),
            ("scale".to_owned(), JsonValue::Str(self.scale.clone())),
            ("threads".to_owned(), JsonValue::Num(self.threads as f64)),
            (
                "cases".to_owned(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|c| {
                            JsonValue::object([
                                ("name".to_owned(), JsonValue::Str(c.name.clone())),
                                (
                                    "events_per_sec".to_owned(),
                                    JsonValue::Num(c.events_per_sec),
                                ),
                                ("allocs".to_owned(), JsonValue::Num(c.allocs as f64)),
                                ("peak_bytes".to_owned(), JsonValue::Num(c.peak_bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses one history line back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }

    /// Rebuilds an entry from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_value(v: &JsonValue) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing {key}"))
        };
        let mut cases = Vec::new();
        for c in v
            .get("cases")
            .and_then(JsonValue::as_array)
            .ok_or("missing cases")?
        {
            cases.push(HistoryCase {
                name: c
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("case without name")?
                    .to_owned(),
                events_per_sec: c
                    .get("events_per_sec")
                    .and_then(JsonValue::as_f64)
                    .ok_or("case without events_per_sec")?,
                allocs: c.get("allocs").and_then(JsonValue::as_u64).unwrap_or(0),
                peak_bytes: c.get("peak_bytes").and_then(JsonValue::as_u64).unwrap_or(0),
            });
        }
        Ok(Self {
            unix_secs: v
                .get("unix_secs")
                .and_then(JsonValue::as_u64)
                .ok_or("missing unix_secs")?,
            git_rev: str_field("git_rev")?,
            fingerprint: str_field("fingerprint")?,
            scale: str_field("scale")?,
            threads: v
                .get("threads")
                .and_then(JsonValue::as_u64)
                .ok_or("missing threads")?,
            cases,
        })
    }
}

/// A coarse machine identity — OS, architecture, logical CPU count —
/// so the trend gate only compares runs from comparable machines.
#[must_use]
pub fn machine_fingerprint() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    format!(
        "{}-{}-{}cpu",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus
    )
}

/// Reads the current git revision by following `.git/HEAD` upward from
/// `start` — no `git` subprocess, so it works on an air-gapped machine.
/// Returns `None` outside a checkout.
#[must_use]
pub fn read_git_rev(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let head = d.join(".git/HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim();
            if let Some(refname) = text.strip_prefix("ref: ") {
                let target = d.join(".git").join(refname);
                if let Ok(rev) = std::fs::read_to_string(target) {
                    return Some(rev.trim().to_owned());
                }
                // Packed refs: fall back to the symbolic name.
                return Some(refname.to_owned());
            }
            return Some(text.to_owned());
        }
        dir = d.parent();
    }
    None
}

/// Appends one entry to a `.jsonl` history file, creating it (and parent
/// directories) as needed.
///
/// # Errors
///
/// Returns any filesystem error.
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    oslay_observe::jsonl::append_line(path, &entry.to_json_value())
}

/// Loads a history file, oldest entry first. Malformed lines are
/// skipped (a half-written line from a crashed run must not wedge the
/// gate forever); blank lines are ignored.
///
/// # Errors
///
/// Returns any filesystem error. A missing file is an empty history.
pub fn load(path: &Path) -> std::io::Result<Vec<HistoryEntry>> {
    Ok(oslay_observe::jsonl::read_lines(path)?
        .iter()
        .filter_map(|v| HistoryEntry::from_value(v).ok())
        .collect())
}

fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    Some(values[values.len() / 2])
}

const NS: f64 = 1e9;

/// Gates `current` against the rolling median of the last `window`
/// comparable history entries (same fingerprint, scale, and threads).
///
/// Returns one human-readable line per gated case on success. A case
/// with no comparable history passes (and says so) — the gate becomes
/// effective from the second run on a machine onward.
///
/// # Errors
///
/// Returns one line per regressed case when any case's throughput is
/// more than `tolerance` below its rolling median (e.g. tolerance 0.2
/// fails a case at < 80% of the median throughput).
pub fn trend_gate(
    history: &[HistoryEntry],
    current: &HistoryEntry,
    tolerance: f64,
    window: usize,
) -> Result<Vec<String>, Vec<String>> {
    let comparable: Vec<&HistoryEntry> = history
        .iter()
        .filter(|h| {
            h.fingerprint == current.fingerprint
                && h.scale == current.scale
                && h.threads == current.threads
        })
        .collect();
    let mut baseline = RunReport::new("trend_baseline");
    let mut latest = RunReport::new("trend_current");
    let mut info = Vec::new();
    let mut medians: Vec<(String, f64)> = Vec::new();
    for case in &current.cases {
        let mut series: Vec<f64> = comparable
            .iter()
            .rev()
            .take(window)
            .filter_map(|h| h.events_per_sec(&case.name))
            .collect();
        let Some(med) = median(&mut series) else {
            info.push(format!(
                "{}: no comparable history yet ({} ev/s recorded)",
                case.name,
                fmt_rate(case.events_per_sec)
            ));
            continue;
        };
        // `compare` flags lower-is-better fields, so gate on ns/event.
        baseline.add_section(
            &format!("trend.{}", case.name),
            [("ns_per_event", NS / med)],
        );
        latest.add_section(
            &format!("trend.{}", case.name),
            [("ns_per_event", NS / case.events_per_sec)],
        );
        medians.push((case.name.clone(), med));
    }
    // tolerance is a fractional throughput *drop*; convert to the
    // equivalent relative increase in time-per-event.
    let time_tolerance = if tolerance < 1.0 {
        tolerance / (1.0 - tolerance)
    } else {
        f64::INFINITY
    };
    let regressions = oslay_observe::compare(&baseline, &latest, time_tolerance);
    if regressions.is_empty() {
        for (name, med) in &medians {
            let cur = current.events_per_sec(name).unwrap_or(0.0);
            info.push(format!(
                "{}: {} ev/s vs median {} ev/s over {} run(s) — ok",
                name,
                fmt_rate(cur),
                fmt_rate(*med),
                comparable.len().min(window)
            ));
        }
        return Ok(info);
    }
    Err(regressions
        .iter()
        .map(|r| {
            let name = r
                .path
                .strip_prefix("trend.")
                .and_then(|p| p.strip_suffix(".ns_per_event"))
                .unwrap_or(&r.path);
            let med = medians
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0.0, |&(_, m)| m);
            let cur = current.events_per_sec(name).unwrap_or(0.0);
            format!(
                "{name}: {} ev/s is {:.1}% below the rolling median {} ev/s (tolerance {:.0}%)",
                fmt_rate(cur),
                100.0 * (1.0 - cur / med),
                fmt_rate(med),
                tolerance * 100.0
            )
        })
        .collect())
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn entry(rate: f64) -> HistoryEntry {
        HistoryEntry {
            unix_secs: 1_700_000_000,
            git_rev: "abc123".to_owned(),
            fingerprint: "linux-x86_64-8cpu".to_owned(),
            scale: "tiny".to_owned(),
            threads: 2,
            cases: vec![
                HistoryCase {
                    name: "stream_base".to_owned(),
                    events_per_sec: rate,
                    allocs: 10,
                    peak_bytes: 1 << 20,
                },
                HistoryCase {
                    name: "matrix_2t".to_owned(),
                    events_per_sec: rate * 3.0,
                    allocs: 99,
                    peak_bytes: 1 << 22,
                },
            ],
        }
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let e = entry(250e6);
        let parsed = HistoryEntry::parse(&e.to_json_line()).expect("parse back");
        assert_eq!(parsed, e);
        assert!(HistoryEntry::parse("{}").is_err());
        assert!(HistoryEntry::parse("not json").is_err());
    }

    #[test]
    fn append_and_load_skip_malformed_lines() {
        let dir = std::env::temp_dir().join(format!(
            "kperf_history_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let path = dir.join("bench_history.jsonl");
        assert!(load(&path).expect("missing file is empty").is_empty());
        append(&path, &entry(100e6)).unwrap();
        append(&path, &entry(110e6)).unwrap();
        // A torn line from a crashed writer must not wedge the history.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{{\"unix_secs\": 12, truncat"))
            .unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].events_per_sec("stream_base"), Some(100e6));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_passes_steady_state_and_first_run() {
        // First run: no history at all.
        let info = trend_gate(&[], &entry(100e6), 0.2, 10).expect("first run passes");
        assert!(info.iter().all(|l| l.contains("no comparable history")));
        // Steady state within noise.
        let history = vec![entry(100e6), entry(104e6), entry(96e6)];
        let info = trend_gate(&history, &entry(99e6), 0.2, 10).expect("within tolerance");
        assert!(info.iter().any(|l| l.contains("ok")), "{info:?}");
    }

    #[test]
    fn gate_fails_a_real_throughput_drop() {
        let history = vec![entry(100e6), entry(102e6), entry(98e6)];
        let errs = trend_gate(&history, &entry(60e6), 0.2, 10).expect_err("40% drop fails");
        assert!(errs.iter().any(|l| l.contains("stream_base")), "{errs:?}");
        // Exactly at the median is never a regression, even at zero
        // tolerance.
        trend_gate(&history, &entry(100e6), 0.0, 10).expect("median itself passes");
    }

    #[test]
    fn gate_ignores_incomparable_machines() {
        let mut other = entry(500e6);
        other.fingerprint = "otheros-riscv64-1cpu".to_owned();
        let info = trend_gate(&[other], &entry(100e6), 0.2, 10).expect("different machine");
        assert!(info.iter().all(|l| l.contains("no comparable history")));
    }

    #[test]
    fn gate_uses_rolling_median_not_last_sample() {
        // One freak fast run must not fail every later normal run.
        let history = vec![entry(100e6), entry(101e6), entry(99e6), entry(400e6)];
        trend_gate(&history, &entry(100e6), 0.2, 10).expect("median absorbs the outlier");
        // And the window bounds how far back the gate looks.
        let old_slow: Vec<HistoryEntry> = (0..20).map(|_| entry(10e6)).collect();
        let recent: Vec<HistoryEntry> = old_slow
            .into_iter()
            .chain((0..5).map(|_| entry(100e6)))
            .collect();
        let errs = trend_gate(&recent, &entry(50e6), 0.2, 5).expect_err("gated on recent window");
        assert!(!errs.is_empty());
    }

    #[test]
    fn fingerprint_and_git_rev_are_well_formed() {
        let fp = machine_fingerprint();
        assert!(fp.contains("cpu"), "{fp}");
        // In this repository there is a .git to find.
        if let Some(rev) = read_git_rev(Path::new(".")) {
            assert!(!rev.is_empty());
        }
    }

    #[test]
    fn from_bench_carries_cases_over() {
        use crate::simbench::{BenchCase, BenchReport};
        let mut b = BenchReport::new("tiny", 2);
        b.push_case(BenchCase {
            name: "stream_base".to_owned(),
            events: 1_000_000,
            secs: 0.01,
            allocs: 5,
            alloc_bytes: 640,
            peak_bytes: 1 << 21,
        });
        let e = HistoryEntry::from_bench(&b, 42, "rev".into(), "fp".into());
        assert_eq!(e.scale, "tiny");
        assert_eq!(e.threads, 2);
        assert_eq!(e.events_per_sec("stream_base"), Some(100e6));
        assert_eq!(e.cases[0].allocs, 5);
    }
}
