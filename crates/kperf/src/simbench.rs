//! Throughput bench report for the simulation engine.
//!
//! The `bench_sim` driver (in `oslay-bench`) measures events/sec and an
//! allocation-based peak-RSS proxy for Base vs OptS replay and writes the
//! numbers to `BENCH_sim.json` at the repo root, so the engine's perf
//! trajectory is tracked in-tree from PR 3 onward.
//!
//! The on-disk format *is* an `oslay_observe::RunReport` — one
//! `bench.<case>` section per measured case plus a `bench.meta` section —
//! so the existing report tooling (`diag --check-results`,
//! `RunReport::compare`) works on it unchanged.

use oslay_observe::RunReport;

/// One measured replay configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCase {
    /// Case label, e.g. `replay_base` or `stream_opt_s`.
    pub name: String,
    /// Cache accesses (instruction fetches) replayed.
    pub events: u64,
    /// Wall-clock seconds for the measured region.
    pub secs: f64,
    /// Allocator calls during the measured region (0 when the counting
    /// allocator is not installed).
    pub allocs: u64,
    /// Bytes requested during the measured region.
    pub alloc_bytes: u64,
    /// Peak live heap bytes over the measured region (RSS proxy).
    pub peak_bytes: u64,
}

impl BenchCase {
    /// Replay throughput in events per second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// The full bench run: meta (scale, threads), the measured cases, and
/// derived cross-case figures (e.g. parallel speedup).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Scale label (`tiny`/`small`/`paper`).
    pub scale: String,
    /// Worker threads used for the sharded phases.
    pub threads: u64,
    /// Measured cases, in measurement order.
    pub cases: Vec<BenchCase>,
    /// Derived figures: `(name, value)`, e.g. `("parallel_speedup", 3.8)`.
    pub derived: Vec<(String, f64)>,
}

impl BenchReport {
    /// Creates an empty report for one bench run.
    #[must_use]
    pub fn new(scale: &str, threads: usize) -> Self {
        Self {
            scale: scale.to_owned(),
            threads: threads as u64,
            cases: Vec::new(),
            derived: Vec::new(),
        }
    }

    /// Appends one measured case.
    pub fn push_case(&mut self, case: BenchCase) {
        self.cases.push(case);
    }

    /// Appends one derived cross-case figure.
    pub fn push_derived(&mut self, name: &str, value: f64) {
        self.derived.push((name.to_owned(), value));
    }

    /// Case throughput by name, if measured.
    #[must_use]
    pub fn events_per_sec(&self, name: &str) -> Option<f64> {
        self.cases
            .iter()
            .find(|c| c.name == name)
            .map(BenchCase::events_per_sec)
    }

    /// Renders the report as a [`RunReport`] named `bench_sim`.
    #[must_use]
    pub fn to_run_report(&self) -> RunReport {
        let mut report = RunReport::new("bench_sim");
        report.add_section(
            "bench.meta",
            [
                ("threads".to_owned(), self.threads as f64),
                ("cases".to_owned(), self.cases.len() as f64),
            ],
        );
        for case in &self.cases {
            report.add_section(
                &format!("bench.{}", case.name),
                [
                    ("events".to_owned(), case.events as f64),
                    ("secs".to_owned(), case.secs),
                    ("events_per_sec".to_owned(), case.events_per_sec()),
                    ("allocs".to_owned(), case.allocs as f64),
                    ("alloc_bytes".to_owned(), case.alloc_bytes as f64),
                    ("peak_bytes".to_owned(), case.peak_bytes as f64),
                ],
            );
        }
        if !self.derived.is_empty() {
            report.add_section(
                "bench.derived",
                self.derived
                    .iter()
                    .map(|(name, value)| (name.clone(), *value)),
            );
        }
        report
    }

    /// Serializes to the `BENCH_sim.json` text.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_run_report().to_json().to_json_pretty()
    }

    /// Writes `BENCH_sim.json` (or any path), creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating directories or writing.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// The minimum acceptable trace-store compression ratio over the
/// fixed-width reference encoding. Reports that carry a
/// `trace_compression_ratio` derived field are gated against it.
pub const MIN_TRACE_COMPRESSION_RATIO: f64 = 3.0;

/// The minimum acceptable single-pass sweep speedup over per-point
/// replay of the committed design-space grid. Reports that carry a
/// `sweep_speedup` derived field are gated against it. The target (and
/// typical measurement) is >= 5x; the floor sits below it so a loaded
/// machine does not flake the gate, while still catching any real
/// regression of the single-pass engine.
pub const MIN_SWEEP_SPEEDUP: f64 = 4.0;

/// The minimum acceptable layout-search inner-loop rate, in incremental
/// objective evaluations per second, gated against the `search_score`
/// case when a report carries one. The incremental scorer touches only
/// the moved atom's lines and incident arcs, so even modest hardware
/// sustains hundreds of thousands of evaluations/sec; the floor sits
/// orders of magnitude below that and trips only on an algorithmic
/// regression (e.g. a full-layout rescore sneaking into the loop).
pub const MIN_SEARCH_SCORE_EVALS_PER_SEC: f64 = 5_000.0;

/// The minimum acceptable end-to-end layout-search rate, in proposed
/// candidates per second, gated against the `search_walk` case when
/// present. The ISSUE-level claim is "thousands of candidates per
/// second"; the floor encodes exactly that, with headroom for loaded
/// CI machines.
pub const MIN_SEARCH_WALK_CANDIDATES_PER_SEC: f64 = 2_000.0;

/// The minimum acceptable abstract-interpretation classification rate,
/// in classified line access points per second, gated against the
/// `absint_classify` case when present. One classification is a fixpoint
/// over a few thousand blocks plus a linear walk; even at paper scale it
/// finishes in well under a second, so the floor only trips on an
/// algorithmic regression (e.g. the worklist losing its queued-flag
/// dedup and going quadratic).
pub const MIN_ABSINT_CLASSIFY_POINTS_PER_SEC: f64 = 2_000.0;

/// Validates serialized `BENCH_sim.json` text: it must parse as a
/// [`RunReport`] and carry at least one `bench.*` case section whose
/// `events_per_sec` field is strictly positive. When the derived section
/// records a `trace_compression_ratio`, it must meet
/// [`MIN_TRACE_COMPRESSION_RATIO`]; a recorded `sweep_speedup` must
/// meet [`MIN_SWEEP_SPEEDUP`]. A report that measures the layout-search
/// cases must clear [`MIN_SEARCH_SCORE_EVALS_PER_SEC`] and
/// [`MIN_SEARCH_WALK_CANDIDATES_PER_SEC`]; one that measures the
/// abstract-interpretation classifier must clear
/// [`MIN_ABSINT_CLASSIFY_POINTS_PER_SEC`].
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn validate(text: &str) -> Result<(), String> {
    let report = RunReport::from_json(text).map_err(|e| format!("not a RunReport: {e}"))?;
    let case_sections: Vec<String> = report
        .section_names()
        .into_iter()
        .filter(|n| n.starts_with("bench.") && *n != "bench.meta" && *n != "bench.derived")
        .map(str::to_owned)
        .collect();
    if case_sections.is_empty() {
        return Err("no bench.<case> sections".to_owned());
    }
    for name in &case_sections {
        let eps = report
            .section_field(name, "events_per_sec")
            .ok_or_else(|| format!("section {name} lacks events_per_sec"))?;
        if eps <= 0.0 {
            return Err(format!("section {name} has non-positive throughput {eps}"));
        }
    }
    if let Some(ratio) = report.section_field("bench.derived", "trace_compression_ratio") {
        if ratio < MIN_TRACE_COMPRESSION_RATIO {
            return Err(format!(
                "trace_compression_ratio {ratio:.2} below the {MIN_TRACE_COMPRESSION_RATIO}x floor"
            ));
        }
    }
    if let Some(ratio) = report.section_field("bench.derived", "sweep_speedup") {
        if ratio < MIN_SWEEP_SPEEDUP {
            return Err(format!(
                "sweep_speedup {ratio:.2} below the {MIN_SWEEP_SPEEDUP}x floor"
            ));
        }
    }
    for (case, floor) in [
        ("bench.search_score", MIN_SEARCH_SCORE_EVALS_PER_SEC),
        ("bench.search_walk", MIN_SEARCH_WALK_CANDIDATES_PER_SEC),
        ("bench.absint_classify", MIN_ABSINT_CLASSIFY_POINTS_PER_SEC),
    ] {
        if let Some(rate) = report.section_field(case, "events_per_sec") {
            if rate < floor {
                return Err(format!(
                    "{case} rate {rate:.0}/s below the {floor:.0}/s floor"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("tiny", 2);
        r.push_case(BenchCase {
            name: "replay_base".to_owned(),
            events: 10_000,
            secs: 0.25,
            allocs: 12,
            alloc_bytes: 4096,
            peak_bytes: 1 << 20,
        });
        r.push_derived("parallel_speedup", 1.9);
        r
    }

    #[test]
    fn throughput_is_events_over_secs() {
        let r = sample();
        assert_eq!(r.events_per_sec("replay_base"), Some(40_000.0));
        assert_eq!(r.events_per_sec("missing"), None);
    }

    #[test]
    fn round_trips_through_run_report_json() {
        let r = sample();
        let text = r.to_json();
        validate(&text).expect("sample report validates");
        let parsed = RunReport::from_json(&text).unwrap();
        assert_eq!(
            parsed.section_field("bench.replay_base", "events_per_sec"),
            Some(40_000.0)
        );
        assert_eq!(parsed.section_field("bench.meta", "threads"), Some(2.0));
        assert_eq!(
            parsed.section_field("bench.derived", "parallel_speedup"),
            Some(1.9)
        );
    }

    #[test]
    fn validate_rejects_zero_throughput_and_empty_reports() {
        let mut r = BenchReport::new("tiny", 1);
        assert!(validate(&r.to_json()).is_err(), "no case sections");
        r.push_case(BenchCase {
            name: "replay_base".to_owned(),
            events: 0,
            secs: 1.0,
            allocs: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        });
        assert!(validate(&r.to_json()).is_err(), "zero throughput");
        assert!(validate("{ not json").is_err());
    }

    #[test]
    fn validate_gates_trace_compression_ratio() {
        let mut r = sample();
        r.push_derived("trace_compression_ratio", 4.4);
        validate(&r.to_json()).expect("ratio above the floor passes");
        let mut r = sample();
        r.push_derived("trace_compression_ratio", 2.1);
        let err = validate(&r.to_json()).expect_err("ratio below the floor fails");
        assert!(err.contains("trace_compression_ratio"), "{err}");
    }

    #[test]
    fn validate_gates_sweep_speedup() {
        let mut r = sample();
        r.push_derived("sweep_speedup", 5.2);
        validate(&r.to_json()).expect("speedup above the floor passes");
        let mut r = sample();
        r.push_derived("sweep_speedup", 3.1);
        let err = validate(&r.to_json()).expect_err("speedup below the floor fails");
        assert!(err.contains("sweep_speedup"), "{err}");
        let r = sample();
        validate(&r.to_json()).expect("absent speedup field is not gated");
    }

    #[test]
    fn validate_gates_search_case_rates() {
        let search_case = |name: &str, events: u64| BenchCase {
            name: name.to_owned(),
            events,
            secs: 1.0,
            allocs: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        };
        let mut r = sample();
        r.push_case(search_case("search_score", 400_000));
        r.push_case(search_case("search_walk", 150_000));
        validate(&r.to_json()).expect("rates above the floors pass");

        let mut r = sample();
        r.push_case(search_case("search_score", 1_000));
        let err = validate(&r.to_json()).expect_err("slow scorer fails");
        assert!(err.contains("search_score"), "{err}");

        let mut r = sample();
        r.push_case(search_case("search_walk", 500));
        let err = validate(&r.to_json()).expect_err("slow walk fails");
        assert!(err.contains("search_walk"), "{err}");

        let r = sample();
        validate(&r.to_json()).expect("absent search cases are not gated");
    }

    #[test]
    fn validate_gates_absint_classify_rate() {
        let case = |events: u64| BenchCase {
            name: "absint_classify".to_owned(),
            events,
            secs: 1.0,
            allocs: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        };
        let mut r = sample();
        r.push_case(case(50_000));
        validate(&r.to_json()).expect("rate above the floor passes");

        let mut r = sample();
        r.push_case(case(500));
        let err = validate(&r.to_json()).expect_err("slow classifier fails");
        assert!(err.contains("absint_classify"), "{err}");

        let r = sample();
        validate(&r.to_json()).expect("absent absint case is not gated");
    }
}
