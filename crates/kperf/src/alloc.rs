//! A counting global allocator: the throughput harness's peak-RSS proxy.
//!
//! Install it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: oslay_perf::alloc::CountingAlloc = oslay_perf::alloc::CountingAlloc;
//! ```
//!
//! and bracket measured regions with [`snapshot`] /
//! [`AllocSnapshot::delta_from`]. The counters are process-global
//! relaxed atomics, so the overhead per allocation is a handful of
//! uncontended atomic adds — small enough to leave installed for every
//! bench run, and exactly zero for code that does not allocate (the
//! whole point of the dense simulation hot path).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Per-thread mirrors of the call/byte counters, so the flight
    // recorder can attribute allocations to the span (and worker) that
    // made them. Const-initialized `Cell<u64>` carries no destructor, so
    // touching it from inside the allocator cannot recurse or trip TLS
    // teardown; `try_with` covers the late-thread-death edge anyway.
    static THREAD_CALLS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

fn on_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    let _ = THREAD_CALLS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|b| b.set(b.get() + size as u64));
}

fn on_dealloc(size: usize) {
    // Saturating: a binary may install the allocator after some early
    // allocations already happened through `System`.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(size as u64))
    });
}

/// A [`System`]-backed allocator that counts calls, bytes, and the peak
/// of live bytes (the RSS proxy reported in `BENCH_sim.json`).
#[derive(Copy, Clone, Debug, Default)]
pub struct CountingAlloc;

// SAFETY: delegates allocation and deallocation verbatim to `System`;
// the bookkeeping touches only atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract
        // (non-zero-sized `layout`), which is exactly what `System.alloc`
        // requires; the layout is forwarded unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller guarantees `ptr` came from this allocator
        // with this `layout`; every allocation path delegates to `System`,
        // so the pair is valid for `System.dealloc`.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: the caller guarantees `ptr`/`layout` describe a live
        // `System` allocation and `new_size` is non-zero, matching
        // `System.realloc`'s contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_alloc(new_size);
            on_dealloc(layout.size());
        }
        p
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls since process start.
    pub calls: u64,
    /// Bytes requested since process start (reallocations count their new
    /// size).
    pub bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas of this (later) snapshot over `earlier`:
    /// allocations and bytes are subtracted; `live_bytes` and
    /// `peak_bytes` keep this snapshot's absolute values (a peak is not
    /// meaningfully differenced).
    #[must_use]
    pub fn delta_from(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            calls: self.calls.saturating_sub(earlier.calls),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Reads the current counters. All zeros unless [`CountingAlloc`] is
/// installed as the global allocator.
#[must_use]
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Resets the peak to the current live byte count, so the next measured
/// region reports its own high-water mark.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Reads the *current thread's* allocation counters: `(calls, bytes)`
/// since the thread started. All zeros unless [`CountingAlloc`] is
/// installed.
#[must_use]
pub fn thread_snapshot() -> (u64, u64) {
    (
        THREAD_CALLS.try_with(Cell::get).unwrap_or(0),
        THREAD_BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

fn flight_probe() -> oslay_observe::flight::AllocSample {
    let (calls, bytes) = thread_snapshot();
    oslay_observe::flight::AllocSample {
        calls,
        bytes,
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Registers [`thread_snapshot`] as the flight recorder's allocation
/// probe, so every flight span records the allocation calls/bytes its
/// thread performed (`kobserve` stays dependency-free; this crate
/// supplies the implementation). Idempotent.
pub fn install_flight_probe() {
    oslay_observe::flight::set_alloc_probe(flight_probe);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests drive the `GlobalAlloc` methods directly instead of
    // installing the allocator (a test harness must not hijack the global
    // allocator), so the counters move deterministically.
    #[test]
    fn alloc_and_dealloc_move_the_counters() {
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = snapshot();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            let mid = snapshot();
            assert_eq!(mid.calls, before.calls + 1);
            assert_eq!(mid.bytes, before.bytes + 4096);
            assert!(mid.live_bytes >= 4096);
            assert!(mid.peak_bytes >= mid.live_bytes);
            CountingAlloc.dealloc(p, layout);
        }
        let after = snapshot();
        let delta = after.delta_from(&before);
        assert_eq!(delta.calls, 1);
        assert_eq!(delta.bytes, 4096);
    }

    #[test]
    fn realloc_counts_new_size_and_releases_old() {
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = snapshot();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            let q = CountingAlloc.realloc(p, layout, 256);
            assert!(!q.is_null());
            CountingAlloc.dealloc(q, Layout::from_size_align(256, 8).unwrap());
        }
        let delta = snapshot().delta_from(&before);
        assert_eq!(delta.calls, 2, "alloc + realloc");
        assert_eq!(delta.bytes, 64 + 256);
    }

    #[test]
    fn thread_counters_track_this_thread_only() {
        let layout = Layout::from_size_align(128, 8).unwrap();
        let (c0, b0) = thread_snapshot();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            CountingAlloc.dealloc(p, layout);
        }
        let (c1, b1) = thread_snapshot();
        assert_eq!(c1, c0 + 1);
        assert_eq!(b1, b0 + 128);
        // A sibling thread's allocations do not leak into our counters.
        std::thread::spawn(move || unsafe {
            let p = CountingAlloc.alloc(layout);
            CountingAlloc.dealloc(p, layout);
        })
        .join()
        .unwrap();
        assert_eq!(thread_snapshot(), (c1, b1));
    }

    #[test]
    fn flight_probe_reports_thread_counters() {
        install_flight_probe();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = oslay_observe::flight::alloc_probe_sample().expect("probe installed");
        unsafe {
            let p = CountingAlloc.alloc(layout);
            CountingAlloc.dealloc(p, layout);
        }
        let after = oslay_observe::flight::alloc_probe_sample().expect("probe installed");
        assert_eq!(after.calls, before.calls + 1);
        assert_eq!(after.bytes, before.bytes + 64);
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            CountingAlloc.dealloc(p, layout);
        }
        reset_peak();
        let s = snapshot();
        assert_eq!(s.peak_bytes, s.live_bytes);
    }
}
