//! Rendering primitives for the `dash` run-report dashboard.
//!
//! Pure string functions — no I/O, no dependencies beyond `std` — that
//! turn numeric series into inline SVG fragments (for the self-contained
//! HTML report) and ASCII sparklines (for the terminal renderer). The
//! `dash` binary supplies the data: telemetry frame streams, phase
//! boundaries, and bench-history trends.
//!
//! All floating-point coordinates are formatted with a fixed `{:.1}`
//! precision so the generated markup is byte-stable across runs and
//! platforms.

use std::fmt::Write as _;

/// Escapes `&`, `<`, `>`, and `"` for safe embedding in HTML/SVG text.
#[must_use]
pub fn html_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// One shaded band behind a sparkline: `[start, end)` in sample indices.
/// Alternating bands visualize phase segments.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Band {
    /// First sample of the band.
    pub start: usize,
    /// One past the last sample of the band.
    pub end: usize,
}

/// Renders `values` as an inline SVG sparkline polyline, `w`×`h` pixels,
/// with alternating shaded `bands` behind it (phase bands). The vertical
/// axis spans `0..=max(values)`; an empty series renders an empty frame.
#[must_use]
pub fn svg_sparkline(values: &[f64], bands: &[Band], w: u32, h: u32) -> String {
    let mut svg = format!(
        "<svg class=\"spark\" viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" \
         xmlns=\"http://www.w3.org/2000/svg\">"
    );
    let n = values.len();
    if n > 0 {
        let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let dx = f64::from(w) / n as f64;
        for (i, band) in bands.iter().enumerate() {
            if i % 2 == 0 || band.end <= band.start {
                continue;
            }
            let x = band.start as f64 * dx;
            let bw = (band.end - band.start) as f64 * dx;
            let _ = write!(
                svg,
                "<rect x=\"{x:.1}\" y=\"0\" width=\"{bw:.1}\" height=\"{h}\" \
                 fill=\"#d0d8e8\" opacity=\"0.5\"/>"
            );
        }
        let mut points = String::new();
        for (i, &v) in values.iter().enumerate() {
            // Sample at the midpoint of its slot; y axis points down.
            let x = (i as f64 + 0.5) * dx;
            let y = f64::from(h) * (1.0 - (v / max).clamp(0.0, 1.0));
            if i > 0 {
                points.push(' ');
            }
            let _ = write!(points, "{x:.1},{y:.1}");
        }
        let _ = write!(
            svg,
            "<polyline points=\"{points}\" fill=\"none\" stroke=\"#2b5b9e\" stroke-width=\"1.5\"/>"
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders `values01` (each clamped to `0..=1`) as a horizontal heat
/// strip of equal-width cells — light for 0, saturated for 1. Used for
/// the per-set occupancy/fill view.
#[must_use]
pub fn svg_heat_strip(values01: &[f64], w: u32, h: u32) -> String {
    let mut svg = format!(
        "<svg class=\"heat\" viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" \
         xmlns=\"http://www.w3.org/2000/svg\">"
    );
    let n = values01.len();
    if n > 0 {
        let dx = f64::from(w) / n as f64;
        for (i, &v) in values01.iter().enumerate() {
            let v = v.clamp(0.0, 1.0);
            // White → deep blue ramp, quantized so equal inputs yield
            // byte-equal markup.
            let level = (v * 255.0).round() as u32;
            let x = i as f64 * dx;
            let _ = write!(
                svg,
                "<rect x=\"{x:.1}\" y=\"0\" width=\"{:.1}\" height=\"{h}\" \
                 fill=\"rgb({},{},255)\"/>",
                dx,
                255 - level * 200 / 255,
                255 - level * 160 / 255,
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Shade ramp for [`text_sparkline`], lightest to darkest.
const SHADES: [char; 5] = [' ', '.', ':', '*', '#'];

/// Renders `values` as a one-line ASCII sparkline (the terminal
/// renderer's building block): each sample becomes one character from a
/// five-step shade ramp scaled to the series maximum.
#[must_use]
pub fn text_sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return SHADES[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (SHADES.len() - 1) as f64).round() as usize;
            SHADES[idx.min(SHADES.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_markup_characters() {
        assert_eq!(html_escape("a<b&c>\"d\""), "a&lt;b&amp;c&gt;&quot;d&quot;");
        assert_eq!(html_escape("plain"), "plain");
    }

    #[test]
    fn sparkline_is_wellformed_and_deterministic() {
        let values = [0.0, 0.5, 1.0, 0.25];
        let bands = [Band { start: 0, end: 2 }, Band { start: 2, end: 4 }];
        let a = svg_sparkline(&values, &bands, 200, 40);
        let b = svg_sparkline(&values, &bands, 200, 40);
        assert_eq!(a, b, "byte-stable output");
        assert!(a.starts_with("<svg") && a.ends_with("</svg>"));
        assert!(a.contains("<polyline"));
        // Only the odd (second) band is shaded.
        assert_eq!(a.matches("<rect").count(), 1);
        // The maximum maps to y = 0.
        assert!(a.contains(",0.0"), "{a}");
        // Empty series: a frame with no geometry.
        let empty = svg_sparkline(&[], &[], 100, 20);
        assert!(!empty.contains("polyline"));
    }

    #[test]
    fn heat_strip_quantizes_a_cell_per_value() {
        let svg = svg_heat_strip(&[0.0, 0.5, 1.0], 120, 8);
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("rgb(255,255,255)"), "zero is white: {svg}");
        assert!(svg.contains("rgb(55,95,255)"), "one is deep blue: {svg}");
        // Out-of-range inputs clamp instead of corrupting the ramp.
        let clamped = svg_heat_strip(&[-1.0, 2.0], 10, 4);
        assert!(clamped.contains("rgb(255,255,255)"));
        assert!(clamped.contains("rgb(55,95,255)"));
    }

    #[test]
    fn text_sparkline_scales_to_series_max() {
        assert_eq!(text_sparkline(&[0.0, 0.25, 0.5, 0.75, 1.0]), " .:*#");
        assert_eq!(text_sparkline(&[0.0, 0.0]), "  ", "all-zero series");
        assert_eq!(text_sparkline(&[]), "");
        // Scaling is relative: a small-magnitude series uses the full ramp.
        assert_eq!(text_sparkline(&[0.001, 0.002]), ":#");
    }
}
