//! Plain-text table and bar-chart rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with column alignment (first column left, rest
    /// right-aligned, as numeric tables read best).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            render_row(&mut out, r, &widths);
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart (one bar per labelled value),
/// scaled so the largest value spans `width` characters.
#[must_use]
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:<label_w$} | {} {value:.4}",
            "#".repeat(bar_len)
        );
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats bytes as a human-readable KB value.
#[must_use]
pub fn kb(bytes: u64) -> String {
    format!("{:.1} KB", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "1000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // Right-aligned numeric column: both data lines end together.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let items = vec![("a".to_owned(), 2.0), ("bb".to_owned(), 4.0)];
        let s = bar_chart(&items, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("##########"));
        assert!(lines[0].contains("#####"));
        assert!(!lines[0].contains("######"));
    }

    #[test]
    fn empty_bar_chart_is_safe() {
        assert_eq!(bar_chart(&[], 10), "");
        let zero = vec![("z".to_owned(), 0.0)];
        assert!(bar_chart(&zero, 10).contains("z"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(kb(2048), "2.0 KB");
    }
}
