//! References and misses as a function of code address
//! (Figures 1, 2 and 14).

use std::collections::BTreeMap;

/// A histogram over address ranges of fixed granularity (the paper plots
//  one point per 1 KB of code).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AddressHistogram {
    granularity: u64,
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl AddressHistogram {
    /// Creates a histogram with the given range granularity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0`.
    #[must_use]
    pub fn new(granularity: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        Self {
            granularity,
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// The paper's 1 KB granularity.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(1024)
    }

    /// Records one event at `addr`.
    pub fn add(&mut self, addr: u64) {
        self.add_n(addr, 1);
    }

    /// Records `n` events at `addr`.
    pub fn add_n(&mut self, addr: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(addr / self.granularity).or_insert(0) += n;
        self.total += n;
    }

    /// Total events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Nonempty ranges as `(range start address, count)`, ascending.
    #[must_use]
    pub fn ranges(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .map(|(&bucket, &count)| (bucket * self.granularity, count))
            .collect()
    }

    /// The `k` heaviest ranges, descending by count.
    #[must_use]
    pub fn peaks(&self, k: usize) -> Vec<(u64, u64)> {
        let mut v = self.ranges();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of all events inside the `k` heaviest ranges — the paper's
    /// observation that misses cluster in narrow address ranges.
    #[must_use]
    pub fn peak_concentration(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let top: u64 = self.peaks(k).iter().map(|&(_, c)| c).sum();
        top as f64 / self.total as f64
    }

    /// Largest single-range count.
    #[must_use]
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_their_kilobyte() {
        let mut h = AddressHistogram::paper();
        h.add(0);
        h.add(1023);
        h.add(1024);
        h.add_n(5000, 3);
        let ranges = h.ranges();
        assert_eq!(ranges, vec![(0, 2), (1024, 1), (4096, 3)]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn peaks_are_sorted_descending() {
        let mut h = AddressHistogram::new(16);
        h.add_n(0, 5);
        h.add_n(16, 9);
        h.add_n(32, 2);
        assert_eq!(h.peaks(2), vec![(16, 9), (0, 5)]);
        assert_eq!(h.max_count(), 9);
    }

    #[test]
    fn peak_concentration_bounds() {
        let mut h = AddressHistogram::new(16);
        for i in 0..10u64 {
            h.add_n(i * 16, 1);
        }
        h.add_n(160, 90);
        let c = h.peak_concentration(1);
        assert!((c - 0.9).abs() < 1e-12);
        assert!((h.peak_concentration(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = AddressHistogram::paper();
        assert_eq!(h.total(), 0);
        assert_eq!(h.peak_concentration(3), 0.0);
        assert!(h.ranges().is_empty());
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut h = AddressHistogram::paper();
        h.add_n(100, 0);
        assert_eq!(h.total(), 0);
        assert!(h.ranges().is_empty());
    }
}
