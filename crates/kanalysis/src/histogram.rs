//! Generic bounded histograms.

/// A histogram over explicit upper bucket bounds, with an overflow bucket.
///
/// Buckets are `(-inf, uppers[0]]`, `(uppers[0], uppers[1]]`, ...,
/// `(uppers[n-1], +inf)`.
#[derive(Clone, PartialEq, Debug)]
pub struct BoundedHistogram {
    uppers: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl BoundedHistogram {
    /// Creates a histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `uppers` is empty or not strictly ascending.
    #[must_use]
    pub fn new(uppers: Vec<f64>) -> Self {
        assert!(!uppers.is_empty(), "histogram needs at least one bound");
        assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "bounds must ascend strictly"
        );
        let n = uppers.len();
        Self {
            uppers,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// Decade bounds `10^1 .. 10^k` (handy for reuse-distance and
    /// iteration-count histograms).
    #[must_use]
    pub fn decades(k: u32) -> Self {
        Self::new((1..=k).map(|e| 10f64.powi(e as i32)).collect())
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.record_n(x, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, x: f64, n: u64) {
        let idx = self.uppers.partition_point(|&u| u < x);
        self.counts[idx] += n;
        self.total += n;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i` (the last index is the overflow bucket).
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets (bounds + overflow).
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Fraction of samples in bucket `i`.
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / self.total as f64
    }

    /// Fraction of samples at or below `x`.
    #[must_use]
    pub fn cumulative_fraction(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = self.uppers.partition_point(|&u| u < x);
        let below: u64 = self.counts[..=idx.min(self.counts.len() - 1)].iter().sum();
        below as f64 / self.total as f64
    }

    /// Human-readable bucket labels.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        let mut prev: Option<f64> = None;
        for &u in &self.uppers {
            labels.push(match prev {
                None => format!("<={u}"),
                Some(p) => format!("({p},{u}]"),
            });
            prev = Some(u);
        }
        labels.push(format!(">{}", self.uppers.last().unwrap()));
        labels
    }

    /// Iterates `(label, count, fraction)` per bucket.
    pub fn rows(&self) -> impl Iterator<Item = (String, u64, f64)> + '_ {
        self.labels()
            .into_iter()
            .enumerate()
            .map(|(i, l)| (l, self.counts[i], self.fraction(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_line() {
        let mut h = BoundedHistogram::new(vec![10.0, 100.0]);
        h.record(5.0);
        h.record(10.0); // inclusive upper
        h.record(50.0);
        h.record(1000.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = BoundedHistogram::decades(3);
        for x in [1.0, 5.0, 50.0, 500.0, 5000.0] {
            h.record(x);
        }
        let sum: f64 = (0..h.num_buckets()).map(|i| h.fraction(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_fraction_is_monotone() {
        let mut h = BoundedHistogram::decades(4);
        for x in [2.0, 20.0, 200.0, 2_000.0, 20_000.0] {
            h.record(x);
        }
        assert!(h.cumulative_fraction(10.0) <= h.cumulative_fraction(100.0));
        // 4 of 5 samples are ≤ 10⁴; the 20 000 sample is in overflow.
        assert!((h.cumulative_fraction(10_000.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn record_n_weights_samples() {
        let mut h = BoundedHistogram::new(vec![1.0]);
        h.record_n(0.5, 9);
        h.record_n(2.0, 1);
        assert!((h.fraction(0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn labels_cover_all_buckets() {
        let h = BoundedHistogram::new(vec![10.0, 100.0]);
        assert_eq!(h.labels().len(), 3);
        assert_eq!(h.labels()[0], "<=10");
        assert_eq!(h.labels()[2], ">100");
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn non_ascending_bounds_panic() {
        let _ = BoundedHistogram::new(vec![10.0, 5.0]);
    }
}
