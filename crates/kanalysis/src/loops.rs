//! Loop behaviour (Table 3, Figures 4 and 5).

use oslay_model::{fetch_words, Program};
use oslay_profile::{LoopAnalysis, NaturalLoop, Profile};

use crate::histogram::BoundedHistogram;

/// Table 3: how much of the kernel's dynamic and static instruction stream
/// belongs to loops *without* procedure calls.
#[derive(Clone, PartialEq, Debug)]
pub struct LoopFractions {
    /// Dynamic instructions inside call-free loops over all dynamic
    /// instructions (paper: 29–39% for the OS-bound workloads).
    pub dynamic_fraction: f64,
    /// Static bytes of executed call-free loop code over executed bytes
    /// (paper: ≈ 3%).
    pub static_executed_fraction: f64,
    /// Static bytes of executed call-free loop code over all code
    /// (paper: ≈ 0.1–0.4%).
    pub static_total_fraction: f64,
    /// Number of distinct executed call-free loops.
    pub num_call_free: usize,
    /// Number of distinct executed loops with calls.
    pub num_with_calls: usize,
}

/// Measures Table 3's fractions.
#[must_use]
pub fn loop_fractions(program: &Program, profile: &Profile, loops: &LoopAnalysis) -> LoopFractions {
    let mut in_loop_nocall = vec![false; program.num_blocks()];
    let mut num_call_free = 0;
    let mut num_with_calls = 0;
    for l in loops.executed_loops() {
        if l.has_calls {
            num_with_calls += 1;
        } else {
            num_call_free += 1;
            for &b in &l.body {
                in_loop_nocall[b.index()] = true;
            }
        }
    }

    let mut dyn_loop = 0u64;
    let mut dyn_total = 0u64;
    let mut static_loop = 0u64;
    let mut static_exec = 0u64;
    let mut static_total = 0u64;
    for (id, block) in program.blocks() {
        let words = u64::from(fetch_words(block.size()));
        let n = profile.node_weight(id);
        dyn_total += n * words;
        static_total += words;
        if n > 0 {
            static_exec += words;
        }
        if in_loop_nocall[id.index()] {
            dyn_loop += n * words;
            if n > 0 {
                static_loop += words;
            }
        }
    }

    LoopFractions {
        dynamic_fraction: ratio(dyn_loop, dyn_total),
        static_executed_fraction: ratio(static_loop, static_exec),
        static_total_fraction: ratio(static_loop, static_total),
        num_call_free,
        num_with_calls,
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Figure 4/5 distributions for one loop family.
#[derive(Clone, PartialEq, Debug)]
pub struct LoopShape {
    /// Iterations per invocation, one sample per distinct loop.
    pub iterations: BoundedHistogram,
    /// Executed size in bytes, one sample per distinct loop — body only
    /// for call-free loops, body + callee closure for loops with calls.
    pub sizes: BoundedHistogram,
    /// Number of loops sampled.
    pub count: usize,
    /// Median iterations per invocation.
    pub median_iterations: f64,
    /// Median size in bytes.
    pub median_size: f64,
}

/// Characterizes the executed loops of one family (Figure 4: call-free;
/// Figure 5: with calls).
#[must_use]
pub fn loop_shape<'a>(loops: impl Iterator<Item = &'a NaturalLoop>) -> LoopShape {
    let mut iterations =
        BoundedHistogram::new(vec![1.0, 2.0, 4.0, 6.0, 10.0, 25.0, 50.0, 100.0, 300.0]);
    let mut sizes = BoundedHistogram::new(vec![
        50.0, 100.0, 300.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0,
    ]);
    let mut iters_all = Vec::new();
    let mut sizes_all = Vec::new();
    for l in loops {
        let it = l.iterations_per_entry();
        if it <= 0.0 {
            continue;
        }
        let size = if l.has_calls {
            l.executed_span_bytes
        } else {
            l.executed_body_bytes
        } as f64;
        iterations.record(it);
        sizes.record(size);
        iters_all.push(it);
        sizes_all.push(size);
    }
    LoopShape {
        count: iters_all.len(),
        median_iterations: median(&mut iters_all),
        median_size: median(&mut sizes_all),
        iterations,
        sizes,
    }
}

fn median(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile, LoopAnalysis) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 61));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(12)).run(80_000);
        let p = Profile::collect(&k.program, &t);
        let la = LoopAnalysis::analyze(&k.program, &p);
        (k.program, p, la)
    }

    #[test]
    fn dynamic_loop_fraction_is_moderate() {
        let (program, profile, la) = setup();
        let f = loop_fractions(&program, &profile, &la);
        // The paper's OS workloads: 29-39% dynamic, a few percent of
        // executed static code. Accept a wide band for the tiny kernel.
        assert!(
            (0.02..0.7).contains(&f.dynamic_fraction),
            "dynamic {}",
            f.dynamic_fraction
        );
        assert!(f.static_executed_fraction < 0.4);
        assert!(f.static_total_fraction < f.static_executed_fraction);
        assert!(f.num_call_free > 0);
    }

    #[test]
    fn call_loops_are_bigger_than_call_free_loops() {
        let (_, _, la) = setup();
        let free = loop_shape(la.executed_loops().filter(|l| !l.has_calls));
        let call = loop_shape(la.executed_loops().filter(|l| l.has_calls));
        assert!(free.count > 0);
        if call.count > 0 {
            assert!(
                call.median_size > free.median_size,
                "call loops {} <= free loops {}",
                call.median_size,
                free.median_size
            );
        }
    }

    #[test]
    fn iteration_histogram_totals_match_count() {
        let (_, _, la) = setup();
        let shape = loop_shape(la.executed_loops());
        assert_eq!(shape.iterations.total() as usize, shape.count);
        assert_eq!(shape.sizes.total() as usize, shape.count);
    }

    #[test]
    fn median_of_empty_is_zero() {
        let shape = loop_shape(std::iter::empty());
        assert_eq!(shape.count, 0);
        assert_eq!(shape.median_iterations, 0.0);
    }
}
