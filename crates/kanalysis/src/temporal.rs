//! Temporal locality (Figures 6, 7, 8).

use std::collections::HashMap;

use oslay_model::{fetch_words, BlockId, Domain, Program, RoutineId, Terminator};
use oslay_profile::{LoopAnalysis, Profile, RoutineStats};
use oslay_trace::{Trace, TraceEvent};

use crate::histogram::BoundedHistogram;

/// Figure 6: routines ranked by invocation count, normalized to 100.
#[derive(Clone, PartialEq, Debug)]
pub struct InvocationSkew {
    /// `(routine, percent of all invocations)`, most invoked first.
    pub ranked: Vec<(RoutineId, f64)>,
}

impl InvocationSkew {
    /// Measures the skew.
    #[must_use]
    pub fn measure(program: &Program, profile: &Profile) -> Self {
        let stats = RoutineStats::compute(program, profile);
        let total = profile.total_routine_invocations().max(1) as f64;
        let ranked = stats
            .ranked_by_invocations()
            .into_iter()
            .map(|(r, n)| (r, n as f64 / total * 100.0))
            .collect();
        Self { ranked }
    }

    /// Percentage of invocations absorbed by the `k` most invoked
    /// routines.
    #[must_use]
    pub fn top_share(&self, k: usize) -> f64 {
        self.ranked.iter().take(k).map(|&(_, p)| p).sum()
    }

    /// Number of routines ever invoked.
    #[must_use]
    pub fn num_invoked(&self) -> usize {
        self.ranked.len()
    }
}

/// Figure 8: basic blocks ranked by loop-flattened execution count.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockSkew {
    /// `(block, percent of flattened executions)`, hottest first.
    pub ranked: Vec<(BlockId, f64)>,
}

impl BlockSkew {
    /// Measures the skew with loops flattened to one iteration per
    /// invocation (as the paper does to remove loop distortion).
    #[must_use]
    pub fn measure(profile: &Profile, loops: &LoopAnalysis) -> Self {
        let total: f64 = profile
            .executed_blocks()
            .map(|b| loops.flattened_weight(b, profile))
            .sum();
        let mut ranked: Vec<(BlockId, f64)> = profile
            .executed_blocks()
            .map(|b| {
                (
                    b,
                    loops.flattened_weight(b, profile) / total.max(1.0) * 100.0,
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        Self { ranked }
    }

    /// Number of blocks whose share is at least `percent`.
    #[must_use]
    pub fn blocks_above(&self, percent: f64) -> usize {
        self.ranked
            .iter()
            .take_while(|&&(_, p)| p >= percent)
            .count()
    }
}

/// Figure 7: OS instruction words fetched between consecutive calls to the
/// same routine, within one OS invocation, for the most popular routines.
#[derive(Clone, PartialEq, Debug)]
pub struct ReuseDistance {
    /// Distance histogram in instruction words (decade buckets up to 10⁵).
    pub histogram: BoundedHistogram,
    /// Calls that were the last to their routine within their invocation
    /// (the paper's `Last Inv` column, ≈ 9%).
    pub last_in_invocation: u64,
    /// Total calls considered.
    pub total_calls: u64,
}

impl ReuseDistance {
    /// Measures reuse distances for the `top_k` most invoked routines.
    #[must_use]
    pub fn measure(program: &Program, profile: &Profile, trace: &Trace, top_k: usize) -> Self {
        let stats = RoutineStats::compute(program, profile);
        let top: std::collections::HashSet<RoutineId> = stats
            .ranked_by_invocations()
            .into_iter()
            .take(top_k)
            .map(|(r, _)| r)
            .collect();

        let mut histogram = BoundedHistogram::decades(5);
        let mut last_in_invocation = 0u64;
        let mut total_calls = 0u64;

        let mut word_pos = 0u64;
        let mut last_call: HashMap<RoutineId, u64> = HashMap::new();
        let mut in_os = false;
        let mut prev: Option<BlockId> = None;
        let mut invocation_start = false;

        for event in trace.events() {
            match *event {
                TraceEvent::OsEnter(_) => {
                    in_os = true;
                    invocation_start = true;
                    word_pos = 0;
                    last_call.clear();
                    prev = None;
                }
                TraceEvent::OsExit => {
                    in_os = false;
                    last_in_invocation += last_call.len() as u64;
                    last_call.clear();
                    prev = None;
                }
                // Diagnostic markers do not affect temporal structure.
                TraceEvent::Mark(_) => {}
                TraceEvent::Block { id, domain } => {
                    if domain != Domain::Os || !in_os {
                        continue;
                    }
                    let routine = program.block(id).routine();
                    let entry = program.routine(routine).entry();
                    let invoked = id == entry
                        && (invocation_start
                            || prev.is_some_and(|p| {
                                matches!(
                                    program.block(p).terminator(),
                                    Terminator::Call { callee, .. } if *callee == routine
                                )
                            }));
                    invocation_start = false;
                    if invoked && top.contains(&routine) {
                        total_calls += 1;
                        if let Some(&pos) = last_call.get(&routine) {
                            histogram.record((word_pos - pos) as f64);
                        }
                        last_call.insert(routine, word_pos);
                    }
                    word_pos += u64::from(fetch_words(program.block(id).size()));
                    prev = Some(id);
                }
            }
        }

        Self {
            histogram,
            last_in_invocation,
            total_calls,
        }
    }

    /// Probability that a call is followed by another call to the same
    /// routine within `words` instruction words (paper: ≈ 25% within 100,
    /// ≈ 70% within 1000).
    #[must_use]
    pub fn reuse_within(&self, words: f64) -> f64 {
        if self.total_calls == 0 {
            return 0.0;
        }
        let below = self.histogram.cumulative_fraction(words) * self.histogram.total() as f64;
        below / self.total_calls as f64
    }

    /// Fraction of calls that were the last in their invocation.
    #[must_use]
    pub fn last_invocation_fraction(&self) -> f64 {
        if self.total_calls == 0 {
            return 0.0;
        }
        self.last_in_invocation as f64 / self.total_calls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile, Trace) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 71));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(13)).run(60_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p, t)
    }

    #[test]
    fn few_routines_dominate_invocations() {
        let (program, profile, _) = setup();
        let skew = InvocationSkew::measure(&program, &profile);
        assert!(skew.num_invoked() > 10);
        // The paper's Figure 6: a handful of routines absorb most
        // invocations.
        let share = skew.top_share(10);
        assert!(share > 30.0, "top-10 share only {share}%");
        // Percentages are sane.
        let total: f64 = skew.ranked.iter().map(|&(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn block_skew_is_heavier_than_uniform() {
        let (program, profile, _) = setup();
        let la = LoopAnalysis::analyze(&program, &profile);
        let skew = BlockSkew::measure(&profile, &la);
        let n = skew.ranked.len();
        assert!(n > 100);
        let uniform = 100.0 / n as f64;
        assert!(
            skew.ranked[0].1 > 10.0 * uniform,
            "hottest block {}% vs uniform {uniform}%",
            skew.ranked[0].1
        );
        assert!(skew.blocks_above(1.0) >= 1);
    }

    #[test]
    fn reuse_distance_shows_temporal_locality() {
        let (program, profile, trace) = setup();
        let rd = ReuseDistance::measure(&program, &profile, &trace, 10);
        assert!(rd.total_calls > 100, "too few calls: {}", rd.total_calls);
        // Reuse within 1000 words should be common (paper: ~70%).
        let w1000 = rd.reuse_within(1000.0);
        assert!(w1000 > 0.2, "reuse within 1000 words only {w1000}");
        // Monotone in the window size.
        assert!(rd.reuse_within(100.0) <= w1000 + 1e-12);
        // Some calls are the last of their invocation.
        let last = rd.last_invocation_fraction();
        assert!((0.0..1.0).contains(&last));
        assert!(last > 0.0);
    }

    #[test]
    fn reuse_distance_accounting_balances() {
        let (program, profile, trace) = setup();
        let rd = ReuseDistance::measure(&program, &profile, &trace, 5);
        // Every call either has a successor call in its invocation
        // (recorded as a distance) or is a last call.
        assert_eq!(rd.histogram.total() + rd.last_in_invocation, rd.total_calls);
    }
}
