//! Sequence predictability and weight (Table 2).
//!
//! The paper defines *core* sequences (those fitting an 8 KB cache without
//! self-conflict) and *regular* sequences (fitting 16 KB), and shows that
//! execution inside them is highly predictable: a block in a core sequence
//! is followed by another core-sequence block with probability 0.95–0.99,
//! and by the *next* block of its own sequence with probability 0.71–0.77;
//! the sequences hold 7–28% of executed blocks but 23–67% of references
//! and 35–75% of misses.

use std::collections::HashMap;

use oslay_model::{fetch_words, BlockId, Program};
use oslay_profile::Profile;

use oslay_layout::SequenceSet;

/// Table 2 metrics for one sequence family under one workload.
#[derive(Clone, PartialEq, Debug)]
pub struct SequenceCharacterization {
    /// P(next executed block is in the family | current block is).
    pub prob_any_in_seq: f64,
    /// P(next executed block is the successor within the same sequence).
    pub prob_next_in_seq: f64,
    /// Family blocks as a fraction of this workload's executed blocks.
    pub static_block_fraction: f64,
    /// Family references as a fraction of OS references.
    pub reference_fraction: f64,
    /// Family misses as a fraction of OS misses (requires per-block miss
    /// counts from a simulation; 0 if not supplied).
    pub miss_fraction: f64,
    /// Total bytes of the family's blocks.
    pub bytes: u64,
    /// Number of blocks in the family.
    pub num_blocks: usize,
    /// Number of distinct routines the family's blocks span.
    pub num_routines: usize,
}

/// Measures Table 2's columns for a sequence family.
///
/// `block_misses`, when given, must hold per-block miss counts measured by
/// replaying this workload's trace against some layout (the paper uses the
/// unoptimized cache).
#[must_use]
pub fn characterize_sequences(
    program: &Program,
    profile: &Profile,
    sequences: &SequenceSet,
    block_misses: Option<&[u64]>,
) -> SequenceCharacterization {
    let in_family: Vec<bool> = (0..program.num_blocks())
        .map(|i| sequences.contains(BlockId::new(i)))
        .collect();

    // Successor within the same sequence.
    let mut next_in_seq: HashMap<BlockId, BlockId> = HashMap::new();
    for s in sequences.sequences() {
        for pair in s.blocks.windows(2) {
            next_in_seq.insert(pair[0], pair[1]);
        }
    }

    let mut from_family_total = 0u64; // arcs out of family blocks
    let mut to_family = 0u64;
    let mut to_next = 0u64;
    for arc in profile.arcs() {
        if !in_family[arc.src.index()] {
            continue;
        }
        from_family_total += arc.count;
        if in_family[arc.dst.index()] {
            to_family += arc.count;
        }
        if next_in_seq.get(&arc.src) == Some(&arc.dst) {
            to_next += arc.count;
        }
    }

    let mut family_refs = 0u64;
    let mut total_refs = 0u64;
    let mut family_misses = 0u64;
    let mut total_misses = 0u64;
    let mut family_blocks = 0usize;
    let mut executed_blocks = 0usize;
    let mut bytes = 0u64;
    let mut routines = std::collections::HashSet::new();
    for (id, block) in program.blocks() {
        let n = profile.node_weight(id);
        let words = u64::from(fetch_words(block.size()));
        total_refs += n * words;
        if n > 0 {
            executed_blocks += 1;
        }
        if let Some(misses) = block_misses {
            total_misses += misses[id.index()];
        }
        if in_family[id.index()] {
            family_refs += n * words;
            family_blocks += 1;
            bytes += u64::from(block.size());
            routines.insert(block.routine());
            if let Some(misses) = block_misses {
                family_misses += misses[id.index()];
            }
        }
    }

    SequenceCharacterization {
        prob_any_in_seq: ratio(to_family, from_family_total),
        prob_next_in_seq: ratio(to_next, from_family_total),
        static_block_fraction: if executed_blocks == 0 {
            0.0
        } else {
            family_blocks as f64 / executed_blocks as f64
        },
        reference_fraction: ratio(family_refs, total_refs),
        miss_fraction: ratio(family_misses, total_misses),
        bytes,
        num_blocks: family_blocks,
        num_routines: routines.len(),
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Builds the paper's *core* sequence family: run the threshold schedule
/// until the captured bytes reach `budget_bytes` (≈ 7.8 KB for core,
/// ≈ 14.5 KB for regular sequences), then stop.
#[must_use]
pub fn sequences_within_budget(
    program: &Program,
    profile: &Profile,
    budget_bytes: u64,
) -> SequenceSet {
    // Sweep single-pass thresholds downwards until the budget is met; this
    // mirrors "the sequences that would fit without self-conflict in an
    // 8 Kbyte cache" being created with higher thresholds than the 16 KB
    // family.
    let mut chosen = None;
    for (exec, branch) in [
        (0.02, 0.5),
        (0.01, 0.4),
        (0.005, 0.4),
        (0.002, 0.3),
        (0.001, 0.2),
        (0.0005, 0.1),
        (0.0002, 0.1),
        (0.0001, 0.05),
        (0.00005, 0.02),
    ] {
        let set = oslay_layout::build_sequences(
            program,
            profile,
            &oslay_layout::ThresholdSchedule::single_pass(exec, branch),
        );
        let bytes: u64 = set.sequences().iter().map(|s| s.bytes).sum();
        if bytes <= budget_bytes {
            chosen = Some(set);
        } else {
            break;
        }
    }
    chosen.unwrap_or_else(|| {
        oslay_layout::build_sequences(
            program,
            profile,
            &oslay_layout::ThresholdSchedule::single_pass(0.05, 0.5),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 91));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(15)).run(80_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p)
    }

    #[test]
    fn core_sequences_are_predictable_and_heavy() {
        let (program, profile) = setup();
        let core = sequences_within_budget(&program, &profile, 8 * 1024);
        let c = characterize_sequences(&program, &profile, &core, None);
        assert!(c.num_blocks > 0);
        assert!(c.bytes <= 8 * 1024);
        // Predictability: staying inside the family is likely.
        assert!(
            c.prob_any_in_seq > 0.5,
            "prob_any_in_seq {}",
            c.prob_any_in_seq
        );
        assert!(c.prob_next_in_seq <= c.prob_any_in_seq);
        // Weight: the family's reference share exceeds its block share.
        assert!(
            c.reference_fraction > c.static_block_fraction,
            "refs {} vs blocks {}",
            c.reference_fraction,
            c.static_block_fraction
        );
    }

    #[test]
    fn regular_family_is_superset_of_core() {
        let (program, profile) = setup();
        let core = sequences_within_budget(&program, &profile, 8 * 1024);
        let regular = sequences_within_budget(&program, &profile, 16 * 1024);
        let core_c = characterize_sequences(&program, &profile, &core, None);
        let regular_c = characterize_sequences(&program, &profile, &regular, None);
        assert!(regular_c.num_blocks >= core_c.num_blocks);
        assert!(regular_c.reference_fraction >= core_c.reference_fraction - 1e-9);
    }

    #[test]
    fn miss_fraction_uses_supplied_counts() {
        let (program, profile) = setup();
        let core = sequences_within_budget(&program, &profile, 8 * 1024);
        // Fake miss counts: 1 miss per executed block → miss fraction
        // equals the fraction of executed blocks in the family.
        let misses: Vec<u64> = (0..program.num_blocks())
            .map(|i| u64::from(profile.node_weight(BlockId::new(i)) > 0))
            .collect();
        let c = characterize_sequences(&program, &profile, &core, Some(&misses));
        assert!((c.miss_fraction - c.static_block_fraction).abs() < 1e-9);
    }
}
