//! Table 1: characteristics of the operating-system instruction
//! references.

use oslay_model::{Program, SeedKind};
use oslay_profile::Profile;
use oslay_trace::Trace;

/// One workload's row set for Table 1.
#[derive(Clone, PartialEq, Debug)]
pub struct RefCharacteristics {
    /// Bytes of OS code executed at least once (paper: 32–123 KB).
    pub executed_bytes: u64,
    /// Executed bytes over total kernel bytes (paper: 3.4–13.1%).
    pub executed_code_fraction: f64,
    /// Executed basic blocks over total basic blocks (paper: 3.6–13.4%).
    pub executed_block_fraction: f64,
    /// Invoked routines over total routines.
    pub invoked_routine_fraction: f64,
    /// Invocation mix by seed class (fractions summing to 1).
    pub invocation_mix: [f64; 4],
    /// OS references (block executions) as a fraction of all references.
    pub os_reference_share: f64,
}

/// Computes Table 1 for one workload.
#[must_use]
pub fn ref_characteristics(
    program: &Program,
    profile: &Profile,
    trace: &Trace,
) -> RefCharacteristics {
    let executed_bytes = profile.executed_bytes(program);
    let executed_code_fraction = executed_bytes as f64 / program.total_size() as f64;
    let executed_block_fraction =
        profile.num_executed_blocks() as f64 / program.num_blocks() as f64;
    let invoked_routine_fraction =
        profile.num_invoked_routines() as f64 / program.num_routines() as f64;
    let total = trace.total_blocks().max(1) as f64;
    RefCharacteristics {
        executed_bytes,
        executed_code_fraction,
        executed_block_fraction,
        invoked_routine_fraction,
        invocation_mix: trace.invocation_mix(),
        os_reference_share: trace.os_blocks() as f64 / total,
    }
}

/// Union view over several workloads: fraction of code/routines touched by
/// *any* workload (paper: "Combining all workloads, only 18% of the
/// operating system code is ever referenced and only 26% of the routines
/// are ever invoked").
#[derive(Clone, PartialEq, Debug)]
pub struct UnionFootprint {
    /// Fraction of kernel bytes executed by any workload.
    pub code_fraction: f64,
    /// Fraction of routines invoked by any workload.
    pub routine_fraction: f64,
    /// Number of blocks executed by any workload.
    pub executed_blocks: usize,
}

/// Computes the union footprint of several profiles of the same kernel.
///
/// # Panics
///
/// Panics if `profiles` is empty.
#[must_use]
pub fn union_footprint(program: &Program, profiles: &[Profile]) -> UnionFootprint {
    assert!(!profiles.is_empty(), "need at least one profile");
    let merged = Profile::merge_all(profiles);
    UnionFootprint {
        code_fraction: merged.executed_bytes(program) as f64 / program.total_size() as f64,
        routine_fraction: merged.num_invoked_routines() as f64 / program.num_routines() as f64,
        executed_blocks: merged.num_executed_blocks(),
    }
}

/// Pretty-prints the invocation mix as the paper's four percentage rows.
#[must_use]
pub fn mix_rows(mix: [f64; 4]) -> Vec<(SeedKind, f64)> {
    SeedKind::ALL
        .iter()
        .map(|&k| (k, mix[k.index()] * 100.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn setup() -> (Program, Profile, Trace) {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 81));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(14)).run(40_000);
        let p = Profile::collect(&k.program, &t);
        (k.program, p, t)
    }

    #[test]
    fn fractions_are_proper() {
        let (program, profile, trace) = setup();
        let rc = ref_characteristics(&program, &profile, &trace);
        assert!(rc.executed_bytes > 0);
        assert!((0.0..1.0).contains(&rc.executed_code_fraction));
        assert!((0.0..1.0).contains(&rc.executed_block_fraction));
        assert!((0.0..1.0).contains(&rc.invoked_routine_fraction));
        assert!((rc.invocation_mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            (rc.os_reference_share - 1.0).abs() < 1e-12,
            "Shell is OS-only"
        );
    }

    #[test]
    fn union_footprint_at_least_each_workload() {
        let (program, profile, _) = setup();
        let union = union_footprint(&program, std::slice::from_ref(&profile));
        let single = profile.executed_bytes(&program) as f64 / program.total_size() as f64;
        assert!((union.code_fraction - single).abs() < 1e-12);
    }

    #[test]
    fn mix_rows_are_percentages() {
        let rows = mix_rows([0.25, 0.25, 0.4, 0.1]);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[2].0, SeedKind::SysCall);
        assert!((rows[2].1 - 40.0).abs() < 1e-12);
    }
}
