//! Arc determinism (Figure 3).
//!
//! "Most arcs either have a very high or a very low probability of being
//! used after the basic block is executed. Indeed, 73.6% of the arcs have
//! a probability larger or equal to 0.99. Similarly, 6.9% of the arcs have
//! a probability smaller or equal to 0.01."

use oslay_profile::Profile;

/// Distribution of measured arc-taken probabilities.
#[derive(Clone, PartialEq, Debug)]
pub struct ArcDeterminism {
    /// 20 equal-width probability buckets over (0, 1].
    pub buckets: [u64; 20],
    /// Number of arcs with probability ≥ 0.99.
    pub ge_99: u64,
    /// Number of arcs with probability ≤ 0.01.
    pub le_01: u64,
    /// Total measured arcs.
    pub total: u64,
}

impl ArcDeterminism {
    /// Measures the distribution over every arc in the profile.
    ///
    /// Arc probability is arc weight over source node weight, exactly the
    /// ratio the sequence builder compares against `BranchThresh`.
    #[must_use]
    pub fn measure(profile: &Profile) -> Self {
        let mut out = Self {
            buckets: [0; 20],
            ge_99: 0,
            le_01: 0,
            total: 0,
        };
        for arc in profile.arcs() {
            let p = profile.arc_prob(arc.src, arc.dst);
            if p <= 0.0 {
                continue;
            }
            let idx = ((p * 20.0).ceil() as usize).clamp(1, 20) - 1;
            out.buckets[idx] += 1;
            if p >= 0.99 {
                out.ge_99 += 1;
            }
            if p <= 0.01 {
                out.le_01 += 1;
            }
            out.total += 1;
        }
        out
    }

    /// Fraction of arcs with probability ≥ 0.99 (paper: 0.736).
    #[must_use]
    pub fn fraction_ge_99(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.ge_99 as f64 / self.total as f64
    }

    /// Fraction of arcs with probability ≤ 0.01 (paper: 0.069).
    #[must_use]
    pub fn fraction_le_01(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.le_01 as f64 / self.total as f64
    }

    /// Fraction of arcs in each of the 20 buckets.
    #[must_use]
    pub fn bucket_fractions(&self) -> [f64; 20] {
        let mut out = [0.0; 20];
        if self.total == 0 {
            return out;
        }
        for (o, &c) in out.iter_mut().zip(&self.buckets) {
            *o = c as f64 / self.total as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn measured() -> ArcDeterminism {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 41));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(11)).run(80_000);
        let p = oslay_profile::Profile::collect(&k.program, &t);
        ArcDeterminism::measure(&p)
    }

    #[test]
    fn distribution_is_bimodal_like_the_paper() {
        let d = measured();
        assert!(d.total > 100, "too few arcs measured");
        // The paper reports 73.6% of arcs at ≥ 0.99; the synthetic kernel
        // should land in a broad band around it.
        let hi = d.fraction_ge_99();
        assert!((0.35..0.95).contains(&hi), "fraction >= 0.99 was {hi}");
        // The extremes together dominate the middle.
        let mid: u64 = d.buckets[4..16].iter().sum();
        assert!(
            d.ge_99 + d.le_01 > mid,
            "extremes {} + {} vs middle {mid}",
            d.ge_99,
            d.le_01
        );
    }

    #[test]
    fn fractions_are_consistent() {
        let d = measured();
        let bucket_sum: u64 = d.buckets.iter().sum();
        assert_eq!(bucket_sum, d.total);
        let frac_sum: f64 = d.bucket_fractions().iter().sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_yields_zeroes() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 41));
        let p = oslay_profile::Profile::empty(&k.program);
        let d = ArcDeterminism::measure(&p);
        assert_eq!(d.total, 0);
        assert_eq!(d.fraction_ge_99(), 0.0);
    }
}
