//! Locality characterization — the measurement half of the paper
//! (Section 3) plus table/figure rendering helpers.
//!
//! Every module regenerates one family of the paper's artifacts:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`arcs`] | Figure 3 (arc-probability bimodality) |
//! | [`loops`] | Table 3, Figures 4 and 5 (loop behaviour) |
//! | [`temporal`] | Figures 6, 7, 8 (invocation skew, reuse distance) |
//! | [`missmap`] | Figures 1, 2, 14 (references/misses vs address) |
//! | [`figures`] | ASCII rendering of the address-map figures |
//! | [`refchar`] | Table 1 (executed footprint, invocation mix) |
//! | [`spatial`] | Table 2 (sequence predictability and weight) |
//! | [`classify`] | Figure 13 (references/misses by block class) |
//! | [`report`] | ASCII tables and bar charts for all of the above |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arcs;
pub mod classify;
pub mod dash;
pub mod figures;
pub mod histogram;
pub mod loops;
pub mod missmap;
pub mod refchar;
pub mod report;
pub mod spatial;
pub mod temporal;
