//! Figure-like rendering of address histograms.
//!
//! The paper's Figures 1, 2 and 14 are scatter plots of counts over the
//! whole code address range. [`render_address_map`] down-samples an
//! [`AddressHistogram`] into a fixed number of columns and prints a
//! vertical bar chart, which preserves what the paper's charts show —
//! where the peaks are and how tall they are relative to the floor.

use crate::missmap::AddressHistogram;

/// Renders the histogram as a `width`-column, `height`-row ASCII chart
/// covering the full populated address range. Returns an empty string for
/// an empty histogram.
#[must_use]
pub fn render_address_map(map: &AddressHistogram, width: usize, height: usize) -> String {
    let ranges = map.ranges();
    let (Some(&(lo, _)), Some(&(hi, _))) = (ranges.first(), ranges.last()) else {
        return String::new();
    };
    let width = width.max(1);
    let height = height.max(1);
    let span = (hi - lo).max(1);

    // Down-sample into columns.
    let mut columns = vec![0u64; width];
    for &(addr, count) in &ranges {
        let col = ((addr - lo) as u128 * (width as u128 - 1) / span as u128) as usize;
        columns[col] += count;
    }
    let max = columns.iter().copied().max().unwrap_or(0).max(1);

    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max as f64 * row as f64 / height as f64;
        for &c in &columns {
            out.push(if (c as f64) >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:#x} .. {:#x}  (peak column: {} events)\n",
        lo,
        hi + 1024,
        max
    ));
    out
}

/// Shade ramp for [`render_set_heatmap`], coldest to hottest.
const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];

/// Renders per-set miss counts as a one-line-per-scale ASCII heatmap:
/// each column is one (or several, when `counts.len() > width`) cache
/// sets, shaded ` .:-=+#@` by miss density relative to the hottest
/// column. Returns an empty string when every count is zero.
///
/// Unlike [`render_address_map`] this is indexed by *cache set*, not by
/// code address: two layouts of the same code produce directly comparable
/// rows, which is what the `diag` layout diff prints them for.
#[must_use]
pub fn render_set_heatmap(counts: &[u64], width: usize) -> String {
    let total: u64 = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return String::new();
    }
    let width = width.max(1).min(counts.len());
    // Down-sample: column c covers sets [c*n/width, (c+1)*n/width).
    let n = counts.len();
    let mut columns = vec![0u64; width];
    for (set, &c) in counts.iter().enumerate() {
        columns[set * width / n] += c;
    }
    let max = columns.iter().copied().max().unwrap_or(1).max(1);

    let mut out = String::new();
    out.push_str("sets |");
    for &c in &columns {
        let top = SHADES.len() as u128 - 1;
        let shade = if c == 0 {
            0
        } else {
            // ceil(c * top / max): non-zero renders visibly, the hottest
            // column always gets the top shade.
            ((c as u128 * top).div_ceil(max as u128) as usize).min(SHADES.len() - 1)
        };
        out.push(SHADES[shade]);
    }
    out.push_str("|\n");
    let (peak_set, &peak) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .expect("non-empty counts");
    out.push_str(&format!(
        "     0..{n} left to right; peak set {peak_set}: {peak} misses; total {total}\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_renders_empty() {
        let map = AddressHistogram::paper();
        assert_eq!(render_address_map(&map, 40, 6), "");
    }

    #[test]
    fn single_peak_fills_one_column() {
        let mut map = AddressHistogram::paper();
        map.add_n(0, 100);
        map.add_n(40 * 1024, 30);
        let chart = render_address_map(&map, 40, 5);
        let lines: Vec<&str> = chart.lines().collect();
        // 5 chart rows + separator + legend.
        assert_eq!(lines.len(), 7);
        // The top row contains exactly one '#' (the 100-count peak).
        assert_eq!(lines[0].matches('#').count(), 1);
        // The bottom chart row (threshold 20) contains both columns.
        assert_eq!(lines[4].matches('#').count(), 2);
    }

    #[test]
    fn all_columns_bounded_by_width() {
        let mut map = AddressHistogram::paper();
        for i in 0..200u64 {
            map.add_n(i * 1024, i % 7 + 1);
        }
        let chart = render_address_map(&map, 32, 4);
        for line in chart.lines().take(4) {
            assert!(line.chars().count() <= 32);
        }
    }

    #[test]
    fn legend_mentions_range() {
        let mut map = AddressHistogram::paper();
        map.add_n(0x1000, 5);
        map.add_n(0x9000, 2);
        let chart = render_address_map(&map, 10, 3);
        assert!(chart.contains("0x1000"));
        assert!(chart.contains("peak column"));
    }

    #[test]
    fn set_heatmap_is_empty_for_zero_misses() {
        assert_eq!(render_set_heatmap(&[0; 16], 16), "");
        assert_eq!(render_set_heatmap(&[], 16), "");
    }

    #[test]
    fn set_heatmap_shades_by_density() {
        let mut counts = vec![0u64; 16];
        counts[3] = 100;
        counts[10] = 1;
        let chart = render_set_heatmap(&counts, 16);
        let row = chart.lines().next().unwrap();
        let cells: Vec<char> = row
            .trim_start_matches("sets |")
            .trim_end_matches('|')
            .chars()
            .collect();
        assert_eq!(cells.len(), 16);
        assert_eq!(cells[3], '@', "hottest set gets the top shade");
        assert_eq!(cells[10], '.', "non-zero sets are visible");
        assert_eq!(cells[0], ' ', "cold sets stay blank");
        assert!(chart.contains("peak set 3: 100 misses"));
    }

    #[test]
    fn set_heatmap_downsamples_wide_inputs() {
        let counts = vec![2u64; 256];
        let chart = render_set_heatmap(&counts, 64);
        let row = chart.lines().next().unwrap();
        assert_eq!(row.chars().count(), 64 + "sets |".len() + 1);
    }
}
