//! Figure-like rendering of address histograms.
//!
//! The paper's Figures 1, 2 and 14 are scatter plots of counts over the
//! whole code address range. [`render_address_map`] down-samples an
//! [`AddressHistogram`] into a fixed number of columns and prints a
//! vertical bar chart, which preserves what the paper's charts show —
//! where the peaks are and how tall they are relative to the floor.

use crate::missmap::AddressHistogram;

/// Renders the histogram as a `width`-column, `height`-row ASCII chart
/// covering the full populated address range. Returns an empty string for
/// an empty histogram.
#[must_use]
pub fn render_address_map(map: &AddressHistogram, width: usize, height: usize) -> String {
    let ranges = map.ranges();
    let (Some(&(lo, _)), Some(&(hi, _))) = (ranges.first(), ranges.last()) else {
        return String::new();
    };
    let width = width.max(1);
    let height = height.max(1);
    let span = (hi - lo).max(1);

    // Down-sample into columns.
    let mut columns = vec![0u64; width];
    for &(addr, count) in &ranges {
        let col = ((addr - lo) as u128 * (width as u128 - 1) / span as u128) as usize;
        columns[col] += count;
    }
    let max = columns.iter().copied().max().unwrap_or(0).max(1);

    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max as f64 * row as f64 / height as f64;
        for &c in &columns {
            out.push(if (c as f64) >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:#x} .. {:#x}  (peak column: {} events)\n",
        lo,
        hi + 1024,
        max
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_renders_empty() {
        let map = AddressHistogram::paper();
        assert_eq!(render_address_map(&map, 40, 6), "");
    }

    #[test]
    fn single_peak_fills_one_column() {
        let mut map = AddressHistogram::paper();
        map.add_n(0, 100);
        map.add_n(40 * 1024, 30);
        let chart = render_address_map(&map, 40, 5);
        let lines: Vec<&str> = chart.lines().collect();
        // 5 chart rows + separator + legend.
        assert_eq!(lines.len(), 7);
        // The top row contains exactly one '#' (the 100-count peak).
        assert_eq!(lines[0].matches('#').count(), 1);
        // The bottom chart row (threshold 20) contains both columns.
        assert_eq!(lines[4].matches('#').count(), 2);
    }

    #[test]
    fn all_columns_bounded_by_width() {
        let mut map = AddressHistogram::paper();
        for i in 0..200u64 {
            map.add_n(i * 1024, i % 7 + 1);
        }
        let chart = render_address_map(&map, 32, 4);
        for line in chart.lines().take(4) {
            assert!(line.chars().count() <= 32);
        }
    }

    #[test]
    fn legend_mentions_range() {
        let mut map = AddressHistogram::paper();
        map.add_n(0x1000, 5);
        map.add_n(0x9000, 2);
        let chart = render_address_map(&map, 10, 3);
        assert!(chart.contains("0x1000"));
        assert!(chart.contains("peak column"));
    }
}
