//! References and misses by placement class (Figure 13).

use oslay_layout::{BlockClass, OptLayout};
use oslay_model::{BlockId, Program};
use oslay_profile::Profile;

/// Per-class shares of references and misses.
#[derive(Clone, PartialEq, Debug)]
pub struct ClassBreakdown {
    /// `(class, reference fraction, miss fraction)` rows in Figure 13's
    /// order.
    pub rows: Vec<(BlockClass, f64, f64)>,
}

/// Classes in Figure 13's order.
pub const FIG13_CLASSES: [BlockClass; 4] = [
    BlockClass::MainSeq,
    BlockClass::SelfConfFree,
    BlockClass::Loop,
    BlockClass::OtherSeq,
];

/// Decomposes a workload's OS references and misses by the placement class
/// each block has in a *reference* optimized layout (the paper classifies
/// by the block's type in `OptL` so the classes stay fixed across
/// layouts).
///
/// `block_misses` holds per-block miss counts from replaying the workload
/// against whatever layout is being reported.
#[must_use]
pub fn class_breakdown(
    program: &Program,
    profile: &Profile,
    reference: &OptLayout,
    block_misses: &[u64],
) -> ClassBreakdown {
    let mut refs = [0u64; 5];
    let mut misses = [0u64; 5];
    let mut total_refs = 0u64;
    let mut total_misses = 0u64;
    for (id, block) in program.blocks() {
        let class = reference.class(id);
        let idx = class_index(class);
        let r = profile.node_weight(id) * u64::from(oslay_model::fetch_words(block.size()));
        let m = block_misses[id.index()];
        refs[idx] += r;
        misses[idx] += m;
        total_refs += r;
        total_misses += m;
    }
    let rows = FIG13_CLASSES
        .iter()
        .map(|&c| {
            let i = class_index(c);
            (
                c,
                ratio(refs[i], total_refs),
                ratio(misses[i], total_misses),
            )
        })
        .collect();
    ClassBreakdown { rows }
}

fn class_index(c: BlockClass) -> usize {
    match c {
        BlockClass::SelfConfFree => 0,
        BlockClass::MainSeq => 1,
        BlockClass::OtherSeq => 2,
        BlockClass::Loop => 3,
        BlockClass::Cold => 4,
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Accumulates per-block miss counts (a helper the evaluation drivers use
/// while replaying traces).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockMissCounter {
    counts: Vec<u64>,
}

impl BlockMissCounter {
    /// Creates a counter for `program`.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        Self {
            counts: vec![0; program.num_blocks()],
        }
    }

    /// Records `n` misses against `block`.
    pub fn add(&mut self, block: BlockId, n: u64) {
        self.counts[block.index()] += n;
    }

    /// The counts, indexed by block.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total misses recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_layout::{optimize_os, OptParams};
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_profile::LoopAnalysis;
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    #[test]
    fn breakdown_fractions_are_shares() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 13));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(16)).run(40_000);
        let p = Profile::collect(&k.program, &t);
        let la = LoopAnalysis::analyze(&k.program, &p);
        let opt = optimize_os(&k.program, &p, &la, &OptParams::opt_l(8192));

        let mut counter = BlockMissCounter::new(&k.program);
        for b in p.executed_blocks() {
            counter.add(b, 1);
        }
        let bd = class_breakdown(&k.program, &p, &opt, counter.counts());
        assert_eq!(bd.rows.len(), 4);
        let ref_sum: f64 = bd.rows.iter().map(|r| r.1).sum();
        // Cold blocks have no references, so the four classes cover
        // everything.
        assert!((ref_sum - 1.0).abs() < 1e-9, "ref shares sum to {ref_sum}");
        for (_, r, m) in &bd.rows {
            assert!((0.0..=1.0).contains(r));
            assert!((0.0..=1.0).contains(m));
        }
    }

    #[test]
    fn counter_accumulates() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 13));
        let mut c = BlockMissCounter::new(&k.program);
        c.add(BlockId::new(0), 2);
        c.add(BlockId::new(0), 3);
        assert_eq!(c.counts()[0], 5);
        assert_eq!(c.total(), 5);
    }
}
