//! End-to-end equivalence of the optimized engine against its reference
//! twins, on the *real* generated workload traces (the unit suites in
//! `oslay-cache` cover randomized streams; here the access pattern is the
//! one the experiments actually replay).
//!
//! Three contracts are pinned:
//!
//! 1. `Study::replay_streaming` produces bit-identical results to the
//!    buffered `Study::simulate` path it replaced on the hot path.
//! 2. The dense tag-array `Cache` classifies every single access exactly
//!    like the map-based `ReferenceCache`.
//! 3. The O(1) intrusive-LRU `ShadowTags` agrees touch-by-touch with the
//!    `ReferenceShadowTags` on the cache-line stream of a real trace.

use oslay::cache::reference::{ReferenceCache, ReferenceShadowTags};
use oslay::cache::{AccessOutcome, Cache, CacheConfig, InstructionCache, MissStats, ShadowTags};
use oslay::model::Domain;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};

fn study() -> Study {
    Study::generate(&StudyConfig::tiny())
}

#[test]
fn coalesced_replay_matches_per_word_replay() {
    // `SimConfig::fast` takes the line-run path (`access_words`) while
    // `SimConfig::full` observes every word individually; the aggregate
    // statistics must be identical.
    let study = study();
    let cfg = CacheConfig::paper_default();
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let os = study.os_layout(kind, cfg.size());
        for case in study.cases() {
            let app = study.app_base_layout(case);
            let mut fast_cache = Cache::new(cfg);
            let fast = study.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut fast_cache,
                &SimConfig::fast(),
            );
            let mut full_cache = Cache::new(cfg);
            let full = study.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut full_cache,
                &SimConfig::full(),
            );
            assert_eq!(
                fast.stats,
                full.stats,
                "coalesced vs per-word stats diverge on {} under {}",
                case.name(),
                kind.name()
            );
        }
    }
}

#[test]
fn streaming_replay_matches_buffered_replay() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let os = study.os_layout(kind, cfg.size());
        for case in study.cases() {
            let app = study.app_base_layout(case);
            let sim = SimConfig::full();
            let mut buffered_cache = Cache::new(cfg);
            let buffered =
                study.simulate(case, &os.layout, app.as_ref(), &mut buffered_cache, &sim);
            let mut streamed_cache = Cache::new(cfg);
            let streamed =
                study.replay_streaming(case, &os.layout, app.as_ref(), &mut streamed_cache, &sim);
            assert_eq!(
                buffered.stats,
                streamed.stats,
                "stats diverge on {} under {}",
                case.name(),
                kind.name()
            );
            assert_eq!(buffered.os_miss_map, streamed.os_miss_map);
            assert_eq!(buffered.os_self_miss_map, streamed.os_self_miss_map);
            assert_eq!(buffered.os_cross_miss_map, streamed.os_cross_miss_map);
            assert_eq!(buffered.os_block_misses, streamed.os_block_misses);
            assert_eq!(buffered.app_block_misses, streamed.app_block_misses);
            assert!(buffered.stats.total_accesses() > 0);
        }
    }
}

/// An `InstructionCache` that feeds every access to both the optimized
/// cache and the reference cache and asserts their detailed outcomes are
/// identical, so `Study::simulate` itself generates the address stream.
#[derive(Debug)]
struct MirrorCache {
    fast: Cache,
    reference: ReferenceCache,
    compared: u64,
}

impl MirrorCache {
    fn new(cfg: CacheConfig) -> Self {
        Self {
            fast: Cache::new(cfg),
            reference: ReferenceCache::new(cfg),
            compared: 0,
        }
    }
}

impl InstructionCache for MirrorCache {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        let got = self.fast.access_detailed(addr, domain);
        let want = self.reference.access_detailed(addr, domain);
        assert_eq!(
            got, want,
            "access #{} at {addr:#x} by {domain:?} diverges",
            self.compared
        );
        self.compared += 1;
        got.outcome
    }

    fn stats(&self) -> &MissStats {
        self.fast.stats()
    }

    fn reset(&mut self) {
        self.fast.reset();
        self.reference = ReferenceCache::new(CacheConfig::paper_default());
        self.compared = 0;
    }
}

#[test]
fn dense_cache_matches_reference_on_real_traces() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let os = study.os_layout(kind, cfg.size());
        for case in study.cases() {
            let app = study.app_base_layout(case);
            let mut mirror = MirrorCache::new(cfg);
            let r = study.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut mirror,
                &SimConfig::fast(),
            );
            assert_eq!(mirror.compared, r.stats.total_accesses());
            assert!(mirror.compared > 0);
        }
    }
}

/// An `InstructionCache` that only records the fetched cache-line
/// addresses, to extract a real line stream for the shadow-store check.
#[derive(Debug, Default)]
struct LineRecorder {
    lines: Vec<u64>,
    stats: MissStats,
}

impl InstructionCache for LineRecorder {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        self.lines
            .push(CacheConfig::paper_default().line_addr(addr));
        self.stats.record(domain, AccessOutcome::Hit);
        AccessOutcome::Hit
    }

    fn stats(&self) -> &MissStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.stats = MissStats::default();
    }
}

#[test]
fn shadow_store_matches_reference_on_real_line_stream() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    let os = study.os_layout(OsLayoutKind::Base, cfg.size());
    let case = &study.cases()[3]; // Shell: OS + app interleaving
    let app = study.app_base_layout(case);
    let mut recorder = LineRecorder::default();
    let _ = study.simulate(
        case,
        &os.layout,
        app.as_ref(),
        &mut recorder,
        &SimConfig::fast(),
    );
    assert!(!recorder.lines.is_empty());
    // The capacity the attribution engine actually uses (whole-cache line
    // count) plus a tiny one to force heavy eviction churn.
    let cache_lines = (cfg.size() / cfg.line()) as usize;
    for capacity in [cache_lines, 17] {
        let mut fast = ShadowTags::new(capacity);
        let mut reference = ReferenceShadowTags::new(capacity);
        for (i, &line) in recorder.lines.iter().enumerate() {
            assert_eq!(
                fast.touch(line),
                reference.touch(line),
                "touch #{i} of line {line:#x} diverges at capacity {capacity}"
            );
            assert_eq!(fast.len(), reference.len());
        }
    }
}
