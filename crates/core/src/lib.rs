//! `oslay` — a reproduction of Torrellas, Xia & Daigle, *"Optimizing
//! Instruction Cache Performance for Operating System Intensive
//! Workloads"* (HPCA 1995).
//!
//! This umbrella crate wires the subsystem crates into the paper's
//! pipeline and re-exports their public APIs:
//!
//! 1. **Model** ([`model`]): a synthetic multiprocessor-Unix kernel and
//!    application programs standing in for the unobtainable Concentrix /
//!    Alliant FX/8 system (see `DESIGN.md`).
//! 2. **Trace** ([`trace`]): block-level traces of the four standard
//!    workloads.
//! 3. **Profile** ([`profile`]): weighted flow graphs, loops, call graphs.
//! 4. **Layout** ([`layout`]): `Base`, `C-H`, `OptS`, `OptL`, `OptA`, and
//!    the Section 4.4 `Call` placement.
//! 5. **Cache** ([`cache`]): trace-driven simulation with interference
//!    classification, plus the `Sep` and `Resv` organizations.
//! 6. **Analysis / perf** ([`analysis`], [`perf`]): the characterization
//!    metrics and the execution-time model.
//!
//! The high-level entry point is [`Study`]: it generates the kernel and
//! workloads, collects profiles, builds layouts, and replays traces
//! through caches.
//!
//! # Example
//!
//! ```
//! use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
//! use oslay::cache::{Cache, CacheConfig};
//!
//! let study = Study::generate(&StudyConfig::tiny());
//! let base = study.os_layout(OsLayoutKind::Base, 8192);
//! let opts = study.os_layout(OsLayoutKind::OptS, 8192);
//! let case = &study.cases()[3]; // Shell
//! let a = study.simulate(case, &base.layout, None,
//!     &mut Cache::new(CacheConfig::paper_default()), &SimConfig::fast());
//! let b = study.simulate(case, &opts.layout, None,
//!     &mut Cache::new(CacheConfig::paper_default()), &SimConfig::fast());
//! assert!(b.stats.total_misses() < a.stats.total_misses());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
mod sim;
mod study;

pub use sim::{FanoutSink, MultiGroupReplayer, MultiLane, Replayer, SimConfig, SimResult};
pub use study::{OsLayout, OsLayoutKind, Study, StudyConfig, WorkloadCase};

pub use oslay_analysis as analysis;
pub use oslay_cache as cache;
pub use oslay_layout as layout;
pub use oslay_model as model;
pub use oslay_perf as perf;
pub use oslay_profile as profile;
pub use oslay_trace as trace;
pub use oslay_verify as verify;

use std::sync::atomic::{AtomicBool, Ordering};

/// Release-build opt-in for pre-simulation layout verification (the
/// drivers' `--verify` flag sets it).
static LAYOUT_VERIFY: AtomicBool = AtomicBool::new(false);

/// Turns pre-simulation layout verification on or off for release builds.
/// Debug builds always verify; see [`layout_verify_enabled`].
pub fn set_layout_verify(enabled: bool) {
    LAYOUT_VERIFY.store(enabled, Ordering::Relaxed);
}

/// Whether [`Study`] verifies every layout it builds before handing it to
/// a simulation: always in debug builds, behind [`set_layout_verify`] in
/// release. A layout that fails verification is a construction bug, so
/// the check panics with the rendered diagnostic report.
#[must_use]
pub fn layout_verify_enabled() -> bool {
    cfg!(debug_assertions) || LAYOUT_VERIFY.load(Ordering::Relaxed)
}
