//! Trace replay through a cache under a pair of layouts.

use oslay_analysis::missmap::AddressHistogram;
use oslay_cache::{InstructionCache, MissStats};
use oslay_layout::Layout;
use oslay_model::Domain;
use oslay_trace::TraceEvent;

use crate::{Study, WorkloadCase};

/// What to collect during a simulation.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Collect a per-1KB histogram of OS miss addresses (Figures 1, 14).
    pub os_miss_map: bool,
    /// Collect per-block miss counts (Figure 13, Table 2).
    pub block_misses: bool,
}

impl SimConfig {
    /// Collect nothing beyond the aggregate statistics.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            os_miss_map: false,
            block_misses: false,
        }
    }

    /// Collect everything.
    #[must_use]
    pub fn full() -> Self {
        Self {
            os_miss_map: true,
            block_misses: true,
        }
    }
}

/// Result of replaying one workload trace against one layout pair.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Aggregate access/miss statistics.
    pub stats: MissStats,
    /// OS miss addresses at 1 KB granularity, if requested.
    pub os_miss_map: Option<AddressHistogram>,
    /// OS self-interference miss addresses (Figure 1-b), if requested.
    pub os_self_miss_map: Option<AddressHistogram>,
    /// OS-from-application interference miss addresses (Figure 1-c), if
    /// requested.
    pub os_cross_miss_map: Option<AddressHistogram>,
    /// Per-OS-block miss counts, if requested.
    pub os_block_misses: Option<Vec<u64>>,
    /// Per-app-block miss counts, if requested (empty when the workload
    /// has no application).
    pub app_block_misses: Option<Vec<u64>>,
}

impl SimResult {
    /// Total miss rate over all instruction fetches.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }
}

impl Study {
    /// Replays `case`'s trace through `cache`, mapping OS blocks through
    /// `os_layout` and app blocks through `app_layout`.
    ///
    /// # Panics
    ///
    /// Panics if the workload traces an application but `app_layout` is
    /// `None`.
    #[must_use]
    pub fn simulate(
        &self,
        case: &WorkloadCase,
        os_layout: &Layout,
        app_layout: Option<&Layout>,
        cache: &mut dyn InstructionCache,
        config: &SimConfig,
    ) -> SimResult {
        assert!(
            case.app.is_none() || app_layout.is_some(),
            "workload {} traces an application: supply its layout",
            case.name()
        );
        let _span = oslay_observe::span("study.sim");
        let mut os_miss_map = config.os_miss_map.then(AddressHistogram::paper);
        let mut os_self_miss_map = config.os_miss_map.then(AddressHistogram::paper);
        let mut os_cross_miss_map = config.os_miss_map.then(AddressHistogram::paper);
        let mut os_block_misses = config
            .block_misses
            .then(|| vec![0u64; self.kernel().program.num_blocks()]);
        let mut app_block_misses = config.block_misses.then(|| {
            vec![
                0u64;
                case.app
                    .as_ref()
                    .map_or(0, oslay_model::Program::num_blocks)
            ]
        });

        for event in case.trace.events() {
            // Boundary and marker events feed the cache's diagnostic
            // hooks (no-ops on plain caches) but fetch nothing.
            let (id, domain) = match *event {
                TraceEvent::Block { id, domain } => (id, domain),
                TraceEvent::OsEnter(kind) => {
                    cache.note_os_enter(kind);
                    continue;
                }
                TraceEvent::OsExit => {
                    cache.note_os_exit();
                    continue;
                }
                TraceEvent::Mark(tag) => {
                    cache.note_mark(tag);
                    continue;
                }
            };
            let layout = match domain {
                Domain::Os => os_layout,
                Domain::App => app_layout.expect("checked above"),
            };
            let mut missed = 0u64;
            let base = layout.addr(id);
            for w in 0..layout.fetch_words(id) {
                let addr = base + u64::from(w) * u64::from(oslay_model::WORD_BYTES);
                let outcome = cache.access(addr, domain);
                if let oslay_cache::AccessOutcome::Miss(kind) = outcome {
                    missed += 1;
                    if domain == Domain::Os {
                        if let Some(map) = os_miss_map.as_mut() {
                            map.add(addr);
                        }
                        match kind {
                            oslay_cache::MissKind::OsSelf => {
                                if let Some(map) = os_self_miss_map.as_mut() {
                                    map.add(addr);
                                }
                            }
                            oslay_cache::MissKind::OsByApp => {
                                if let Some(map) = os_cross_miss_map.as_mut() {
                                    map.add(addr);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            if missed > 0 {
                match domain {
                    Domain::Os => {
                        if let Some(v) = os_block_misses.as_mut() {
                            v[id.index()] += missed;
                        }
                    }
                    Domain::App => {
                        if let Some(v) = app_block_misses.as_mut() {
                            v[id.index()] += missed;
                        }
                    }
                }
            }
        }

        SimResult {
            stats: *cache.stats(),
            os_miss_map,
            os_self_miss_map,
            os_cross_miss_map,
            os_block_misses,
            app_block_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OsLayoutKind, StudyConfig};
    use oslay_cache::{Cache, CacheConfig, MissKind};

    fn study() -> Study {
        Study::generate(&StudyConfig::tiny())
    }

    #[test]
    fn accesses_match_trace_volume() {
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast());
        // Every OS block contributes its fetch words.
        let mut expected = 0u64;
        for event in case.trace.events() {
            if let TraceEvent::Block {
                id,
                domain: Domain::Os,
            } = *event
            {
                expected += u64::from(base.layout.fetch_words(id));
            }
        }
        assert_eq!(r.stats.accesses(Domain::Os), expected);
        assert_eq!(r.stats.accesses(Domain::App), 0);
    }

    #[test]
    fn optimized_layout_misses_less_than_base() {
        let s = study();
        let case = &s.cases()[3]; // Shell (OS only)
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let opts = s.os_layout(OsLayoutKind::OptS, 8192);
        let run = |l: &oslay_layout::Layout| {
            let mut cache = Cache::new(CacheConfig::paper_default());
            s.simulate(case, l, None, &mut cache, &SimConfig::fast())
                .stats
                .total_misses()
        };
        let base_misses = run(&base.layout);
        let opt_misses = run(&opts.layout);
        assert!(
            opt_misses < base_misses,
            "OptS ({opt_misses}) must beat Base ({base_misses})"
        );
    }

    #[test]
    fn os_self_interference_dominates_in_base() {
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast());
        let os_self = r.stats.misses(MissKind::OsSelf);
        let total = r.stats.total_misses();
        // Tiny-scale traces leave cold misses a visible share; at paper
        // scale self-interference exceeds 90% (see EXPERIMENTS.md).
        assert!(
            os_self * 10 >= total * 7,
            "OS self-interference {os_self} of {total} misses"
        );
    }

    #[test]
    fn collected_block_misses_sum_to_stats() {
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::full());
        let by_block: u64 = r.os_block_misses.as_ref().unwrap().iter().sum();
        assert_eq!(by_block, r.stats.total_misses());
        assert_eq!(
            r.os_miss_map.as_ref().unwrap().total(),
            r.stats.total_misses()
        );
    }

    #[test]
    fn app_workload_requires_app_layout() {
        let s = study();
        let case = &s.cases()[0];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let app_base = s.app_base_layout(case).unwrap();
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(
            case,
            &base.layout,
            Some(&app_base),
            &mut cache,
            &SimConfig::fast(),
        );
        assert!(r.stats.accesses(Domain::App) > 0);
    }

    #[test]
    #[should_panic(expected = "supply its layout")]
    fn missing_app_layout_panics() {
        let s = study();
        let case = &s.cases()[0];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let _ = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast());
    }
}
