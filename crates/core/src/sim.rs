//! Trace replay through a cache under a pair of layouts.

use std::sync::Arc;

use oslay_analysis::missmap::AddressHistogram;
use oslay_cache::{CacheConfig, InstructionCache, MissStats, MultiSim};
use oslay_layout::Layout;
use oslay_model::Domain;
use oslay_observe::timeline::{self, CacheSnapshot, WindowRecorder};
use oslay_trace::TraceEvent;

use crate::{Study, WorkloadCase};

/// Cumulative cache state for the timeline: aggregate statistics off
/// [`InstructionCache::stats`] plus whatever state sample the cache's
/// own telemetry probe provides.
fn cache_snapshot<C: InstructionCache + ?Sized>(cache: &C) -> CacheSnapshot {
    let stats = cache.stats();
    CacheSnapshot {
        accesses: stats.total_accesses(),
        os_accesses: stats.accesses(Domain::Os),
        misses: stats.total_misses(),
        cold_misses: stats.misses(oslay_cache::MissKind::Cold),
        probe: cache.telemetry_snapshot(),
    }
}

/// What to collect during a simulation.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Collect a per-1KB histogram of OS miss addresses (Figures 1, 14).
    pub os_miss_map: bool,
    /// Collect per-block miss counts (Figure 13, Table 2).
    pub block_misses: bool,
}

impl SimConfig {
    /// Collect nothing beyond the aggregate statistics.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            os_miss_map: false,
            block_misses: false,
        }
    }

    /// Collect everything.
    #[must_use]
    pub fn full() -> Self {
        Self {
            os_miss_map: true,
            block_misses: true,
        }
    }
}

/// Result of replaying one workload trace against one layout pair.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Aggregate access/miss statistics.
    pub stats: MissStats,
    /// OS miss addresses at 1 KB granularity, if requested.
    pub os_miss_map: Option<AddressHistogram>,
    /// OS self-interference miss addresses (Figure 1-b), if requested.
    pub os_self_miss_map: Option<AddressHistogram>,
    /// OS-from-application interference miss addresses (Figure 1-c), if
    /// requested.
    pub os_cross_miss_map: Option<AddressHistogram>,
    /// Per-OS-block miss counts, if requested.
    pub os_block_misses: Option<Vec<u64>>,
    /// Per-app-block miss counts, if requested (empty when the workload
    /// has no application).
    pub app_block_misses: Option<Vec<u64>>,
}

impl SimResult {
    /// Total miss rate over all instruction fetches.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }
}

/// A streaming trace consumer that drives a cache: each [`TraceEvent`]
/// maps through the layouts to an instruction-fetch address stream and the
/// configured miss collectors.
///
/// This is the engine's hot path. [`Study::simulate`] feeds it from a
/// buffered [`oslay_trace::Trace`] (the compatibility shim);
/// [`Study::replay_streaming`] feeds it straight from the trace engine via
/// [`oslay_trace::TraceSink`], so paper-scale workloads never materialize
/// the event vector.
pub struct Replayer<'a, C: InstructionCache + ?Sized = dyn InstructionCache> {
    os_layout: &'a Layout,
    app_layout: Option<&'a Layout>,
    cache: &'a mut C,
    os_miss_map: Option<AddressHistogram>,
    os_self_miss_map: Option<AddressHistogram>,
    os_cross_miss_map: Option<AddressHistogram>,
    os_block_misses: Option<Vec<u64>>,
    app_block_misses: Option<Vec<u64>>,
    /// Per-word replay is only needed when address-granular miss maps are
    /// collected; otherwise block fetches take the coalesced line-run
    /// path.
    per_address: bool,
    /// Timeline recorder, present only when the timeline is enabled and
    /// this thread is inside a recording scope — the hot path then pays
    /// one branch per event plus a periodic cache sample.
    telemetry: Option<Box<WindowRecorder>>,
}

impl<C: InstructionCache + ?Sized> std::fmt::Debug for Replayer<'_, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replayer")
            .field("os_layout", &self.os_layout.name())
            .field("has_app_layout", &self.app_layout.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a, C: InstructionCache + ?Sized> Replayer<'a, C> {
    /// Creates a replayer. `os_blocks`/`app_blocks` size the per-block
    /// miss vectors when `config.block_misses` is set.
    #[must_use]
    pub fn new(
        os_layout: &'a Layout,
        app_layout: Option<&'a Layout>,
        cache: &'a mut C,
        config: &SimConfig,
        os_blocks: usize,
        app_blocks: usize,
    ) -> Self {
        let telemetry = timeline::recorder().map(Box::new);
        if telemetry.is_some() {
            // Ask the cache to keep its side of the telemetry (the
            // eviction-age histogram) for the duration of this replay;
            // `finish` turns it back off.
            cache.set_telemetry(true);
        }
        Self {
            os_layout,
            app_layout,
            cache,
            os_miss_map: config.os_miss_map.then(AddressHistogram::paper),
            os_self_miss_map: config.os_miss_map.then(AddressHistogram::paper),
            os_cross_miss_map: config.os_miss_map.then(AddressHistogram::paper),
            os_block_misses: config.block_misses.then(|| vec![0u64; os_blocks]),
            app_block_misses: config.block_misses.then(|| vec![0u64; app_blocks]),
            per_address: config.os_miss_map,
            telemetry,
        }
    }

    /// Replays one event.
    ///
    /// # Panics
    ///
    /// Panics if an app block arrives but no app layout was supplied.
    pub fn on_event(&mut self, event: TraceEvent) {
        self.handle_event(event);
        if let Some(tl) = self.telemetry.as_deref_mut() {
            if tl.tick() {
                tl.sample(&cache_snapshot(&*self.cache));
            }
        }
    }

    fn handle_event(&mut self, event: TraceEvent) {
        // Boundary and marker events feed the cache's diagnostic
        // hooks (no-ops on plain caches) but fetch nothing.
        let (id, domain) = match event {
            TraceEvent::Block { id, domain } => (id, domain),
            TraceEvent::OsEnter(kind) => {
                self.cache.note_os_enter(kind);
                return;
            }
            TraceEvent::OsExit => {
                self.cache.note_os_exit();
                return;
            }
            TraceEvent::Mark(tag) => {
                self.cache.note_mark(tag);
                return;
            }
        };
        let layout = match domain {
            Domain::Os => self.os_layout,
            Domain::App => self.app_layout.expect("app block but no app layout"),
        };
        let base = layout.addr(id);
        // Without per-address miss maps the per-word outcomes are not
        // observed, so the whole block fetch goes through the cache's
        // line-run path (identical stats and state, bulk-counted hits).
        if !self.per_address {
            let missed = self
                .cache
                .access_words(base, layout.fetch_words(id), domain);
            if missed > 0 {
                match domain {
                    Domain::Os => {
                        if let Some(v) = self.os_block_misses.as_mut() {
                            v[id.index()] += missed;
                        }
                    }
                    Domain::App => {
                        if let Some(v) = self.app_block_misses.as_mut() {
                            v[id.index()] += missed;
                        }
                    }
                }
            }
            return;
        }
        let mut missed = 0u64;
        for w in 0..layout.fetch_words(id) {
            let addr = base + u64::from(w) * u64::from(oslay_model::WORD_BYTES);
            let outcome = self.cache.access(addr, domain);
            if let oslay_cache::AccessOutcome::Miss(kind) = outcome {
                missed += 1;
                if domain == Domain::Os {
                    if let Some(map) = self.os_miss_map.as_mut() {
                        map.add(addr);
                    }
                    match kind {
                        oslay_cache::MissKind::OsSelf => {
                            if let Some(map) = self.os_self_miss_map.as_mut() {
                                map.add(addr);
                            }
                        }
                        oslay_cache::MissKind::OsByApp => {
                            if let Some(map) = self.os_cross_miss_map.as_mut() {
                                map.add(addr);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        if missed > 0 {
            match domain {
                Domain::Os => {
                    if let Some(v) = self.os_block_misses.as_mut() {
                        v[id.index()] += missed;
                    }
                }
                Domain::App => {
                    if let Some(v) = self.app_block_misses.as_mut() {
                        v[id.index()] += missed;
                    }
                }
            }
        }
    }

    /// Finishes the replay, reading the final statistics off the cache.
    /// If the timeline was recording, the final (possibly partial)
    /// window is closed, the run's phases are segmented, and the cache's
    /// telemetry bookkeeping is released.
    #[must_use]
    pub fn finish(mut self) -> SimResult {
        if let Some(tl) = self.telemetry.take() {
            tl.finish(&cache_snapshot(&*self.cache));
            self.cache.set_telemetry(false);
        }
        SimResult {
            stats: *self.cache.stats(),
            os_miss_map: self.os_miss_map,
            os_self_miss_map: self.os_self_miss_map,
            os_cross_miss_map: self.os_cross_miss_map,
            os_block_misses: self.os_block_misses,
            app_block_misses: self.app_block_misses,
        }
    }
}

impl<C: InstructionCache + ?Sized> oslay_trace::TraceSink for Replayer<'_, C> {
    fn event(&mut self, event: TraceEvent) {
        self.on_event(event);
    }
}

/// Duplicates a trace stream into several sinks, in order.
///
/// The fan-out half of single-pass sweeping: one trace decode (or one
/// engine walk) feeds any number of consumers — e.g. the archived-matrix
/// driver decodes each `.otr` case once and replays it through every
/// layout's [`Replayer`] side by side instead of re-decoding per point.
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn oslay_trace::TraceSink>,
}

impl std::fmt::Debug for FanoutSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<'a> FanoutSink<'a> {
    /// Wraps the given sinks; every event is forwarded to each of them in
    /// the order given.
    #[must_use]
    pub fn new(sinks: Vec<&'a mut dyn oslay_trace::TraceSink>) -> Self {
        Self { sinks }
    }
}

impl oslay_trace::TraceSink for FanoutSink<'_> {
    fn event(&mut self, event: TraceEvent) {
        for sink in &mut self.sinks {
            sink.event(event);
        }
    }
}

/// One layout pair within a [`MultiGroupReplayer`]: a multi-configuration
/// simulator ([`MultiSim`]) fed through this pair's address mapping.
///
/// Points sharing a trace but differing in OS or app layout cannot share
/// a [`MultiSim`] (their address streams differ), so each distinct layout
/// pair gets a lane and all lanes ride the same trace walk.
#[derive(Clone, Debug)]
pub struct MultiLane {
    os_layout: Arc<Layout>,
    app_layout: Option<Arc<Layout>>,
    sim: MultiSim,
}

impl MultiLane {
    /// Creates a lane simulating every configuration in `configs` under
    /// the given layout pair.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    #[must_use]
    pub fn new(
        os_layout: Arc<Layout>,
        app_layout: Option<Arc<Layout>>,
        configs: &[CacheConfig],
    ) -> Self {
        Self {
            os_layout,
            app_layout,
            sim: MultiSim::new(configs),
        }
    }

    /// The OS layout this lane maps OS blocks through.
    #[must_use]
    pub fn os_layout(&self) -> &Arc<Layout> {
        &self.os_layout
    }

    /// The app layout this lane maps app blocks through, if any.
    #[must_use]
    pub fn app_layout(&self) -> Option<&Arc<Layout>> {
        self.app_layout.as_ref()
    }

    /// The lane's simulator, for per-point results after the replay.
    #[must_use]
    pub fn sim(&self) -> &MultiSim {
        &self.sim
    }
}

/// Timeline sample for a lane group. There is no single "the cache" here;
/// by convention the first configured point of the first lane represents
/// the group (the committed sweep grids list the baseline point first),
/// and no probe sample is attached.
fn multi_snapshot(lanes: &[MultiLane]) -> CacheSnapshot {
    let stats = lanes[0].sim.stats(0);
    CacheSnapshot {
        accesses: stats.total_accesses(),
        os_accesses: stats.accesses(Domain::Os),
        misses: stats.total_misses(),
        cold_misses: stats.misses(oslay_cache::MissKind::Cold),
        probe: None,
    }
}

/// A streaming trace consumer that drives a whole sweep group — several
/// layout-pair lanes, each simulating many cache configurations — through
/// one walk of the trace.
///
/// The single-pass counterpart of [`Replayer`]: where that maps each
/// event to one fetch against one cache, this maps it through every
/// lane's layouts into that lane's [`MultiSim`]. Only aggregate
/// statistics are collected (the equivalent of [`SimConfig::fast`]);
/// sweeps needing miss maps or per-block counts replay per point.
///
/// # Panics
///
/// [`oslay_trace::TraceSink::event`] panics if an app block arrives on a
/// lane without an app layout.
pub struct MultiGroupReplayer {
    lanes: Vec<MultiLane>,
    /// Timeline recorder, present only when the timeline is enabled and
    /// this thread is inside a recording scope (same contract as
    /// [`Replayer`]); samples carry no per-cache probe data.
    telemetry: Option<Box<WindowRecorder>>,
}

impl std::fmt::Debug for MultiGroupReplayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiGroupReplayer")
            .field("lanes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

impl MultiGroupReplayer {
    /// Creates a replayer over the given lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty.
    #[must_use]
    pub fn new(lanes: Vec<MultiLane>) -> Self {
        assert!(!lanes.is_empty(), "a sweep group needs at least one lane");
        Self {
            lanes,
            telemetry: timeline::recorder().map(Box::new),
        }
    }

    /// Finishes the replay and hands the lanes (with their accumulated
    /// per-point results) back. Closes the timeline run if one was
    /// recording.
    #[must_use]
    pub fn finish(mut self) -> Vec<MultiLane> {
        if let Some(tl) = self.telemetry.take() {
            tl.finish(&multi_snapshot(&self.lanes));
        }
        self.lanes
    }
}

impl oslay_trace::TraceSink for MultiGroupReplayer {
    fn event(&mut self, event: TraceEvent) {
        if let TraceEvent::Block { id, domain } = event {
            for lane in &mut self.lanes {
                let layout = match domain {
                    Domain::Os => &lane.os_layout,
                    Domain::App => lane
                        .app_layout
                        .as_ref()
                        .expect("app block but no app layout"),
                };
                lane.sim
                    .access_words(layout.addr(id), layout.fetch_words(id), domain);
            }
        }
        // Boundary and marker events fetch nothing (and a sweep group has
        // no diagnostic hooks), but they still advance the timeline so
        // window boundaries line up with the per-point replays.
        if let Some(tl) = self.telemetry.as_deref_mut() {
            if tl.tick() {
                tl.sample(&multi_snapshot(&self.lanes));
            }
        }
    }
}

/// Forwards a trace stream unchanged to an inner sink, emitting flight
/// recorder heartbeat counters every `every` events: events streamed so
/// far (`sim.events`), instantaneous throughput (`sim.ev_per_s`), and —
/// when an allocation probe is installed — the live heap size
/// (`sim.live_bytes`).
///
/// The telemetry substrate for long streaming replays: a consumer can
/// watch throughput evolve over a run instead of learning one aggregate
/// number at the end. Only constructed while the flight recorder is
/// enabled ([`Study::stream_case`] wraps its sink conditionally), so the
/// hot path pays nothing when tracing is off — and the wrapped stream is
/// bit-identical either way.
pub struct HeartbeatSink<'a, S: oslay_trace::TraceSink + ?Sized> {
    inner: &'a mut S,
    every: u64,
    seen: u64,
    window_start: std::time::Instant,
    window_seen: u64,
}

impl<S: oslay_trace::TraceSink + ?Sized> std::fmt::Debug for HeartbeatSink<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatSink")
            .field("every", &self.every)
            .field("seen", &self.seen)
            .finish_non_exhaustive()
    }
}

impl<'a, S: oslay_trace::TraceSink + ?Sized> HeartbeatSink<'a, S> {
    /// Default heartbeat interval: one snapshot per ~1M events, frequent
    /// enough to chart a run, far too coarse to perturb it.
    pub const DEFAULT_EVERY: u64 = 1 << 20;

    /// Wraps `inner`, beating every `every` events (min 1).
    pub fn new(inner: &'a mut S, every: u64) -> Self {
        Self {
            inner,
            every: every.max(1),
            seen: 0,
            window_start: std::time::Instant::now(),
            window_seen: 0,
        }
    }

    fn beat(&mut self) {
        let dt = self.window_start.elapsed().as_secs_f64();
        oslay_observe::flight::counter("sim.events", self.seen as f64);
        if dt > 0.0 {
            oslay_observe::flight::counter(
                "sim.ev_per_s",
                (self.seen - self.window_seen) as f64 / dt,
            );
        }
        if let Some(alloc) = oslay_observe::flight::alloc_probe_sample() {
            oslay_observe::flight::counter("sim.live_bytes", alloc.live_bytes as f64);
        }
        self.window_start = std::time::Instant::now();
        self.window_seen = self.seen;
    }
}

impl<S: oslay_trace::TraceSink + ?Sized> oslay_trace::TraceSink for HeartbeatSink<'_, S> {
    fn event(&mut self, event: TraceEvent) {
        self.inner.event(event);
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.beat();
        }
    }
}

impl Study {
    fn replayer_sizes(&self, case: &WorkloadCase) -> (usize, usize) {
        (
            self.kernel().program.num_blocks(),
            case.app
                .as_ref()
                .map_or(0, oslay_model::Program::num_blocks),
        )
    }

    /// Replays `case`'s trace through `cache`, mapping OS blocks through
    /// `os_layout` and app blocks through `app_layout`.
    ///
    /// # Panics
    ///
    /// Panics if the workload traces an application but `app_layout` is
    /// `None`.
    #[must_use]
    pub fn simulate<C: InstructionCache + ?Sized>(
        &self,
        case: &WorkloadCase,
        os_layout: &Layout,
        app_layout: Option<&Layout>,
        cache: &mut C,
        config: &SimConfig,
    ) -> SimResult {
        assert!(
            case.app.is_none() || app_layout.is_some(),
            "workload {} traces an application: supply its layout",
            case.name()
        );
        let _span = oslay_observe::span("study.sim");
        let (os_blocks, app_blocks) = self.replayer_sizes(case);
        let mut replayer =
            Replayer::new(os_layout, app_layout, cache, config, os_blocks, app_blocks);
        for event in case.trace.events() {
            replayer.on_event(*event);
        }
        replayer.finish()
    }

    /// Like [`Study::simulate`], but regenerates the case's trace from its
    /// recorded seed and streams every event straight into the cache —
    /// the event vector is never touched (nor needed), so this is the
    /// path for workloads too large to buffer.
    ///
    /// Produces bit-identical results to [`Study::simulate`] because the
    /// engine's streaming walk emits the same event sequence.
    ///
    /// # Panics
    ///
    /// Panics if the workload traces an application but `app_layout` is
    /// `None`.
    #[must_use]
    pub fn replay_streaming<C: InstructionCache + ?Sized>(
        &self,
        case: &WorkloadCase,
        os_layout: &Layout,
        app_layout: Option<&Layout>,
        cache: &mut C,
        config: &SimConfig,
    ) -> SimResult {
        assert!(
            case.app.is_none() || app_layout.is_some(),
            "workload {} traces an application: supply its layout",
            case.name()
        );
        let _span = oslay_observe::span("study.sim");
        let (os_blocks, app_blocks) = self.replayer_sizes(case);
        let mut replayer =
            Replayer::new(os_layout, app_layout, cache, config, os_blocks, app_blocks);
        self.stream_case(case, &mut replayer);
        replayer.finish()
    }

    /// Like [`Study::replay_streaming`], but replays an *archived* event
    /// stream (an `oslay-tracestore` reader, a buffered trace — any
    /// [`oslay_trace::TraceSink`] feeder) instead of regenerating the
    /// walk. The caller drives the replayer through the returned handle
    /// and finishes it for the result; see `oslay-bench`'s archived
    /// matrix drivers.
    ///
    /// # Panics
    ///
    /// Panics if the workload traces an application but `app_layout` is
    /// `None`.
    #[must_use]
    pub fn replayer_for<'a, C: InstructionCache + ?Sized>(
        &self,
        case: &WorkloadCase,
        os_layout: &'a Layout,
        app_layout: Option<&'a Layout>,
        cache: &'a mut C,
        config: &SimConfig,
    ) -> Replayer<'a, C> {
        assert!(
            case.app.is_none() || app_layout.is_some(),
            "workload {} traces an application: supply its layout",
            case.name()
        );
        let (os_blocks, app_blocks) = self.replayer_sizes(case);
        Replayer::new(os_layout, app_layout, cache, config, os_blocks, app_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OsLayoutKind, StudyConfig};
    use oslay_cache::{Cache, CacheConfig, MissKind};

    fn study() -> Study {
        Study::generate(&StudyConfig::tiny())
    }

    #[test]
    fn accesses_match_trace_volume() {
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast());
        // Every OS block contributes its fetch words.
        let mut expected = 0u64;
        for event in case.trace.events() {
            if let TraceEvent::Block {
                id,
                domain: Domain::Os,
            } = *event
            {
                expected += u64::from(base.layout.fetch_words(id));
            }
        }
        assert_eq!(r.stats.accesses(Domain::Os), expected);
        assert_eq!(r.stats.accesses(Domain::App), 0);
    }

    #[test]
    fn optimized_layout_misses_less_than_base() {
        let s = study();
        let case = &s.cases()[3]; // Shell (OS only)
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let opts = s.os_layout(OsLayoutKind::OptS, 8192);
        let run = |l: &oslay_layout::Layout| {
            let mut cache = Cache::new(CacheConfig::paper_default());
            s.simulate(case, l, None, &mut cache, &SimConfig::fast())
                .stats
                .total_misses()
        };
        let base_misses = run(&base.layout);
        let opt_misses = run(&opts.layout);
        assert!(
            opt_misses < base_misses,
            "OptS ({opt_misses}) must beat Base ({base_misses})"
        );
    }

    #[test]
    fn os_self_interference_dominates_in_base() {
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast());
        let os_self = r.stats.misses(MissKind::OsSelf);
        let total = r.stats.total_misses();
        // Tiny-scale traces leave cold misses a visible share; at paper
        // scale self-interference exceeds 90% (see EXPERIMENTS.md).
        assert!(
            os_self * 10 >= total * 7,
            "OS self-interference {os_self} of {total} misses"
        );
    }

    #[test]
    fn collected_block_misses_sum_to_stats() {
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::full());
        let by_block: u64 = r.os_block_misses.as_ref().unwrap().iter().sum();
        assert_eq!(by_block, r.stats.total_misses());
        assert_eq!(
            r.os_miss_map.as_ref().unwrap().total(),
            r.stats.total_misses()
        );
    }

    #[test]
    fn streaming_replay_matches_buffered_simulate() {
        let s = study();
        for case in [&s.cases()[0], &s.cases()[3]] {
            let base = s.os_layout(OsLayoutKind::Base, 8192);
            let app = s.app_base_layout(case);
            let mut c1 = Cache::new(CacheConfig::paper_default());
            let buffered = s.simulate(
                case,
                &base.layout,
                app.as_ref(),
                &mut c1,
                &SimConfig::full(),
            );
            let mut c2 = Cache::new(CacheConfig::paper_default());
            let streamed = s.replay_streaming(
                case,
                &base.layout,
                app.as_ref(),
                &mut c2,
                &SimConfig::full(),
            );
            assert_eq!(buffered.stats, streamed.stats, "case {}", case.name());
            assert_eq!(buffered.os_block_misses, streamed.os_block_misses);
            assert_eq!(buffered.app_block_misses, streamed.app_block_misses);
            assert_eq!(
                buffered.os_miss_map.as_ref().unwrap().total(),
                streamed.os_miss_map.as_ref().unwrap().total()
            );
        }
    }

    #[test]
    fn app_workload_requires_app_layout() {
        let s = study();
        let case = &s.cases()[0];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let app_base = s.app_base_layout(case).unwrap();
        let mut cache = Cache::new(CacheConfig::paper_default());
        let r = s.simulate(
            case,
            &base.layout,
            Some(&app_base),
            &mut cache,
            &SimConfig::fast(),
        );
        assert!(r.stats.accesses(Domain::App) > 0);
    }

    #[test]
    #[should_panic(expected = "supply its layout")]
    fn missing_app_layout_panics() {
        let s = study();
        let case = &s.cases()[0];
        let base = s.os_layout(OsLayoutKind::Base, 8192);
        let mut cache = Cache::new(CacheConfig::paper_default());
        let _ = s.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast());
    }

    // The flight recorder and timeline are process-global; serialize the
    // tests that touch them.
    fn observability_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A sink that archives every event it receives, for byte-exact
    /// forwarding comparisons.
    #[derive(Debug, Default)]
    struct ArchiveSink(Vec<TraceEvent>);

    impl oslay_trace::TraceSink for ArchiveSink {
        fn event(&mut self, event: TraceEvent) {
            self.0.push(event);
        }
    }

    #[test]
    fn heartbeat_default_cadence_is_two_to_the_twenty() {
        assert_eq!(HeartbeatSink::<ArchiveSink>::DEFAULT_EVERY, 1 << 20);
    }

    #[test]
    fn heartbeat_beats_on_exact_cadence_with_monotone_counters() {
        let _g = observability_gate();
        oslay_observe::flight::reset();
        oslay_observe::flight::enable();
        let s = study();
        let case = &s.cases()[3];
        let total = case.trace.events().len() as u64;
        let every = 64u64;
        let mut archive = ArchiveSink::default();
        {
            let mut hb = HeartbeatSink::new(&mut archive, every);
            for event in case.trace.events() {
                oslay_trace::TraceSink::event(&mut hb, *event);
            }
        }
        oslay_observe::flight::disable();
        let beats: Vec<f64> = oslay_observe::flight::counter_events()
            .into_iter()
            .filter(|c| c.name == "sim.events")
            .map(|c| c.value)
            .collect();
        oslay_observe::flight::reset();
        assert_eq!(
            beats.len() as u64,
            total / every,
            "one beat per {every} events, nothing on the partial tail"
        );
        for (i, &v) in beats.iter().enumerate() {
            assert_eq!(v, ((i as u64 + 1) * every) as f64, "beat {i} cadence");
        }
        assert!(
            beats.windows(2).all(|w| w[0] < w[1]),
            "event counter strictly monotone"
        );
    }

    #[test]
    fn heartbeat_wrapper_forwards_events_byte_identically() {
        let _g = observability_gate();
        let s = study();
        let case = &s.cases()[0]; // app+OS mix: all event kinds flow
        let mut plain = ArchiveSink::default();
        for event in case.trace.events() {
            oslay_trace::TraceSink::event(&mut plain, *event);
        }
        // Wrapped, with an aggressive cadence and the recorder enabled:
        // the downstream archive must not change by one byte.
        oslay_observe::flight::reset();
        oslay_observe::flight::enable();
        let mut wrapped = ArchiveSink::default();
        {
            let mut hb = HeartbeatSink::new(&mut wrapped, 7);
            for event in case.trace.events() {
                oslay_trace::TraceSink::event(&mut hb, *event);
            }
        }
        oslay_observe::flight::disable();
        oslay_observe::flight::reset();
        assert_eq!(plain.0, wrapped.0);
        assert_eq!(format!("{:?}", plain.0), format!("{:?}", wrapped.0));
    }

    #[test]
    fn replayer_records_a_timeline_run_when_scoped() {
        let _g = observability_gate();
        timeline::reset();
        let s = study();
        let case = &s.cases()[3];
        let base = s.os_layout(OsLayoutKind::Base, 8192);

        // Telemetry disabled: no run is recorded.
        let mut c1 = Cache::new(CacheConfig::paper_default());
        let plain = s.replay_streaming(case, &base.layout, None, &mut c1, &SimConfig::fast());
        assert_eq!(timeline::runs_recorded(), 0);

        // Enabled + scoped: one validated run, identical sim results.
        timeline::enable();
        let _scope = timeline::scope(timeline::group(), 0, "test/Base");
        let mut c2 = Cache::new(CacheConfig::paper_default());
        let traced = s.replay_streaming(case, &base.layout, None, &mut c2, &SimConfig::fast());
        timeline::disable();
        assert_eq!(plain.stats, traced.stats, "telemetry must not perturb");
        assert_eq!(timeline::runs_recorded(), 1);
        let doc = timeline::document().to_json_pretty();
        timeline::reset();
        let stats = oslay_observe::timeline::validate_telemetry(&doc).expect("valid document");
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.events, case.trace.events().len() as u64);
        assert!(stats.frames > 0);
        assert!(stats.phases > 0);
    }
}
