//! Deterministic fork/join execution for independent simulation jobs.
//!
//! [`parallel_map`] is the only concurrency primitive in the workspace:
//! scoped `std` threads pulling jobs off a shared atomic cursor, with
//! results returned **in job-index order** regardless of which worker ran
//! which job or in what order they finished. Callers keep determinism by
//! making each job self-contained (own RNG seed, own metric registry) and
//! merging the returned vector sequentially.
//!
//! The paper's own methodology is the precedent: its trace monitor drained
//! one buffer per Alliant FX/8 processor in parallel and merged them
//! afterwards (Section 2.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default worker count: the machine's available parallelism (1 if it
/// cannot be determined).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `f` over every item, using up to `threads` scoped workers, and
/// returns the results in item order.
///
/// `f` receives `(index, item)`. With `threads <= 1` (or fewer than two
/// items) everything runs inline on the caller's thread — byte-for-byte
/// the sequential behavior, no worker machinery at all.
///
/// # Observability
///
/// Every call records `exec.parallel_map` plus one `exec.job.wait` /
/// `exec.job.run` pair per job into the global span recorder — the
/// *counts* are a pure function of the job list, so run reports stay
/// identical at any worker count. When the flight recorder is enabled,
/// each worker additionally registers a `worker-<w>` track and every job
/// emits a per-worker `exec.job` flight span carrying its job index and
/// queue-wait time, so a sharded run can be audited for load imbalance.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller (workers are joined by the
/// scope).
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let _pm = oslay_observe::flight::span_with_args(
        "exec.parallel_map",
        &[("jobs", n as f64), ("threads", threads as f64)],
    );
    let epoch = Instant::now();
    // Shared by the inline and the sharded path, so the recorder sees
    // the same span names and counts regardless of the thread count.
    let run_job = |i: usize, item: T| -> R {
        let queued = epoch.elapsed();
        let _job = oslay_observe::flight::span_with_args(
            "exec.job",
            &[
                ("job", i as f64),
                ("queue_wait_us", queued.as_secs_f64() * 1e6),
            ],
        );
        let started = Instant::now();
        let r = f(i, item);
        let recorder = oslay_observe::global_recorder();
        recorder.record("exec.job.run", started.elapsed());
        recorder.record("exec.job.wait", queued);
        r
    };
    if threads <= 1 || n <= 1 {
        let out: Vec<R> = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| run_job(i, t))
            .collect();
        if n > 0 {
            oslay_observe::global_recorder().record("exec.parallel_map", epoch.elapsed());
        }
        return out;
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..threads.min(n) {
            let (run_job, slots, results, cursor) = (&run_job, &slots, &results, &cursor);
            scope.spawn(move || {
                oslay_observe::flight::set_thread_track(&format!("worker-{w}"));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("job slot")
                        .take()
                        .expect("job taken once");
                    let r = run_job(i, item);
                    *results[i].lock().expect("result slot") = Some(r);
                }
            });
        }
    });
    oslay_observe::global_recorder().record("exec.parallel_map", epoch.elapsed());
    let _merge = oslay_observe::flight::span("exec.merge");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8, 64] {
            let got = parallel_map(threads, items.clone(), |_, x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn passes_job_indices() {
        let got = parallel_map(4, vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u32> = parallel_map(8, Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(8, vec![7], |_, x| x + 1), [8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(parallel_map(32, vec![1, 2], |_, x| x), [1, 2]);
    }
}
