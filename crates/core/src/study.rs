//! The end-to-end study: kernel + workloads + profiles + layouts.

use oslay_layout::{
    base_layout, call_opt_layout, chang_hwu_layout, optimize_app, optimize_os, BlockClass,
    CallOptParams, Layout, OptLayout, OptParams, APP_BASE,
};
use oslay_model::synth::{
    generate_app_mix, generate_kernel, AppParams, KernelParams, Scale, SyntheticKernel,
};
use oslay_model::Program;
use oslay_profile::{LoopAnalysis, Profile};
use oslay_trace::{standard_workloads, Engine, EngineConfig, StandardWorkload, WorkloadSpec};

/// Configuration of a [`Study`].
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Kernel scale.
    pub scale: Scale,
    /// Master seed (kernel, apps and traces derive their seeds from it).
    pub seed: u64,
    /// OS block events to trace per workload.
    pub os_blocks: u64,
    /// Application size multiplier (1.0 = paper scale).
    pub app_scale: f64,
}

impl StudyConfig {
    /// Paper-scale configuration (the default for experiment binaries).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            scale: Scale::Paper,
            seed: 0x05_1995,
            os_blocks: 1_200_000,
            app_scale: 1.0,
        }
    }

    /// Small configuration for integration tests and benches.
    #[must_use]
    pub fn small() -> Self {
        Self {
            scale: Scale::Small,
            seed: 0x05_1995,
            os_blocks: 250_000,
            app_scale: 0.5,
        }
    }

    /// Tiny configuration for unit tests and doctests.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            scale: Scale::Tiny,
            seed: 0x05_1995,
            os_blocks: 40_000,
            app_scale: 0.25,
        }
    }

    /// Overrides the traced OS block count.
    #[must_use]
    pub fn with_os_blocks(mut self, n: u64) -> Self {
        self.os_blocks = n;
        self
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One workload of the study: its spec, application, trace, and profiles.
#[derive(Debug)]
pub struct WorkloadCase {
    /// Which standard workload this is.
    pub workload: StandardWorkload,
    /// The engine spec (invocation mix, dispatch weights, app burst).
    pub spec: WorkloadSpec,
    /// The application program, if the workload traces one.
    pub app: Option<Program>,
    /// The block-level trace.
    pub trace: oslay_trace::Trace,
    /// Kernel profile measured from this trace.
    pub os_profile: Profile,
    /// Application profile, if an application is traced.
    pub app_profile: Option<Profile>,
    /// Seed of the engine that produced (and can re-produce) this case's
    /// trace — the streaming replay path re-runs the walk instead of
    /// re-reading the buffered events.
    pub engine_seed: u64,
}

impl WorkloadCase {
    /// The workload's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.workload.name()
    }
}

/// Which OS layout to build.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum OsLayoutKind {
    /// Original source order.
    Base,
    /// Hwu–Chang profile-guided placement.
    ChangHwu,
    /// The paper's sequences + SelfConfFree layout.
    OptS,
    /// `OptS` plus loop extraction.
    OptL,
    /// The Section 4.4 loops-with-callees placement.
    Call,
}

impl OsLayoutKind {
    /// All kinds, in the paper's Figure 12 order plus `Call`.
    pub const ALL: [OsLayoutKind; 5] = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
        OsLayoutKind::OptL,
        OsLayoutKind::Call,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OsLayoutKind::Base => "Base",
            OsLayoutKind::ChangHwu => "C-H",
            OsLayoutKind::OptS => "OptS",
            OsLayoutKind::OptL => "OptL",
            OsLayoutKind::Call => "Call",
        }
    }
}

/// An OS layout plus (for the optimized kinds) its block classes.
#[derive(Clone, Debug)]
pub struct OsLayout {
    /// The memory layout.
    pub layout: Layout,
    /// Placement class per block (all `Cold` for `Base`/`C-H`, which do
    /// not define classes).
    pub classes: Option<Vec<BlockClass>>,
    /// SelfConfFree bytes (0 where not applicable).
    pub scf_bytes: u64,
}

/// The full study state.
#[derive(Debug)]
pub struct Study {
    config: StudyConfig,
    kernel: SyntheticKernel,
    cases: Vec<WorkloadCase>,
    os_profile_avg: Profile,
    loops: LoopAnalysis,
}

impl Study {
    /// Generates the kernel, the four standard workloads, their traces and
    /// profiles. Deterministic in `config`.
    ///
    /// Each stage reports a phase span (`study.synth.kernel`,
    /// `study.synth.app`, `study.trace`, `study.profile`, `study.loops`)
    /// to the global [`oslay_observe`] recorder.
    #[must_use]
    pub fn generate(config: &StudyConfig) -> Self {
        Self::generate_with_threads(config, 1)
    }

    /// Like [`Study::generate`], sharding the per-workload work (app
    /// synthesis, trace walk, profiling) over up to `threads` workers.
    ///
    /// Every case derives its seeds from the master seed and its own
    /// index, never from execution order, so the result is identical to
    /// the sequential build at any worker count.
    #[must_use]
    pub fn generate_with_threads(config: &StudyConfig, threads: usize) -> Self {
        let kernel = oslay_observe::global_recorder().time("study.synth.kernel", || {
            generate_kernel(&KernelParams::at_scale(config.scale, config.seed))
        });
        let specs = standard_workloads(&kernel.tables);
        let jobs: Vec<(StandardWorkload, WorkloadSpec)> =
            StandardWorkload::ALL.iter().copied().zip(specs).collect();
        let cases = crate::exec::parallel_map(threads, jobs, |i, (workload, spec)| {
            let components = workload.app_components();
            let app = if spec.has_app() && !components.is_empty() {
                let _g = oslay_observe::span("study.synth.app");
                Some(generate_app_mix(
                    &components,
                    &AppParams::new(config.seed ^ (0xA00 + i as u64)).with_scale(config.app_scale),
                ))
            } else {
                None
            };
            let engine_seed = config.seed ^ (0x7_0000 + i as u64);
            let mut engine = Engine::new(
                &kernel.program,
                app.as_ref(),
                &spec,
                EngineConfig::new(engine_seed),
            );
            let trace = {
                let _g = oslay_observe::span("study.trace");
                engine.run(config.os_blocks)
            };
            let _g = oslay_observe::span("study.profile");
            let os_profile = Profile::collect(&kernel.program, &trace);
            let app_profile = app.as_ref().map(|a| Profile::collect(a, &trace));
            WorkloadCase {
                workload,
                spec,
                app,
                trace,
                os_profile,
                app_profile,
                engine_seed,
            }
        });
        let _g = oslay_observe::span("study.loops");
        let os_profile_avg = Profile::merge_all(
            &cases
                .iter()
                .map(|c| c.os_profile.clone())
                .collect::<Vec<_>>(),
        );
        let loops = LoopAnalysis::analyze(&kernel.program, &os_profile_avg);
        Self {
            config: config.clone(),
            kernel,
            cases,
            os_profile_avg,
            loops,
        }
    }

    /// The study configuration.
    #[must_use]
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The synthetic kernel.
    #[must_use]
    pub fn kernel(&self) -> &SyntheticKernel {
        &self.kernel
    }

    /// The four workload cases, in Table 1 order.
    #[must_use]
    pub fn cases(&self) -> &[WorkloadCase] {
        &self.cases
    }

    /// The profile averaged over all workloads — the input to every OS
    /// layout (Section 5: "the layouts are created after taking the
    /// average of the profiles of all the workloads").
    #[must_use]
    pub fn averaged_os_profile(&self) -> &Profile {
        &self.os_profile_avg
    }

    /// Loop analysis of the kernel under the averaged profile.
    #[must_use]
    pub fn os_loops(&self) -> &LoopAnalysis {
        &self.loops
    }

    /// Builds an OS layout for the given cache size. Reports a
    /// `study.layout.<name>` phase span to the global recorder.
    #[must_use]
    pub fn os_layout(&self, kind: OsLayoutKind, cache_size: u32) -> OsLayout {
        let _g = oslay_observe::global_recorder().span(&format!("study.layout.{}", kind.name()));
        let program = &self.kernel.program;
        match kind {
            OsLayoutKind::Base => OsLayout {
                layout: self.checked_structural(base_layout(program, 0)),
                classes: None,
                scf_bytes: 0,
            },
            OsLayoutKind::ChangHwu => OsLayout {
                layout: self.checked_structural(chang_hwu_layout(program, &self.os_profile_avg, 0)),
                classes: None,
                scf_bytes: 0,
            },
            OsLayoutKind::OptS => {
                let params = OptParams::opt_s(cache_size);
                let opt = optimize_os(program, &self.os_profile_avg, &self.loops, &params);
                self.checked_opt(opt, &params)
            }
            OsLayoutKind::OptL => {
                let params = OptParams::opt_l(cache_size);
                let opt = optimize_os(program, &self.os_profile_avg, &self.loops, &params);
                self.checked_opt(opt, &params)
            }
            OsLayoutKind::Call => {
                let opt = call_opt_layout(
                    program,
                    &self.os_profile_avg,
                    &self.loops,
                    &CallOptParams::new(cache_size),
                );
                // The Call placement deliberately reuses SelfConfFree
                // offsets inside its per-loop logical caches (the paper's
                // negative result), so only the structural invariants
                // apply to it.
                OsLayout {
                    layout: self.checked_structural(opt.layout),
                    scf_bytes: opt.scf_bytes,
                    classes: Some(opt.classes),
                }
            }
        }
    }

    /// Runs the full invariant suite on an optimized layout when layout
    /// verification is on (always in debug builds; `--verify` in release),
    /// panicking on any error-severity diagnostic.
    fn checked_opt(&self, opt: OptLayout, params: &OptParams) -> OsLayout {
        if crate::layout_verify_enabled() {
            let report = oslay_verify::verify_os_layout(
                &self.kernel.program,
                &self.os_profile_avg,
                &self.loops,
                &opt,
                params,
                Self::VERIFY_LINE_BYTES,
            );
            assert_eq!(
                report.errors(),
                0,
                "layout failed static verification:\n{}",
                report.render()
            );
        }
        OsLayout {
            layout: opt.layout,
            scf_bytes: opt.scf_bytes,
            classes: Some(opt.classes),
        }
    }

    /// Structural-only verification for layouts without optimizer
    /// provenance (`Base`, `C-H`, `Call`).
    fn checked_structural(&self, layout: Layout) -> Layout {
        if crate::layout_verify_enabled() {
            let view = oslay_verify::LayoutView::from_layout(&layout);
            let report = oslay_verify::verify_structural(&self.kernel.program, &view);
            assert_eq!(
                report.errors(),
                0,
                "layout failed static verification:\n{}",
                report.render()
            );
        }
        layout
    }

    /// Line size used only to label conflicting sets in verification
    /// reports (the paper's 32-byte lines).
    const VERIFY_LINE_BYTES: u32 = 32;

    /// Builds an OS `OptS` layout with a custom SelfConfFree byte budget
    /// (Figure 16's sweep).
    #[must_use]
    pub fn os_opt_s_with_scf(&self, cache_size: u32, budget: Option<u32>) -> OsLayout {
        let params = OptParams::opt_s(cache_size).with_scf_budget(budget);
        let opt = optimize_os(
            &self.kernel.program,
            &self.os_profile_avg,
            &self.loops,
            &params,
        );
        self.checked_opt(opt, &params)
    }

    /// Regenerates `case`'s trace from its recorded engine seed and
    /// streams every event into `sink`, in execution order.
    ///
    /// This is the one source of truth for a case's event stream: the
    /// streaming replay path drives a cache replayer with it, and the
    /// trace archiver (`oslay-tracestore`) tees it to disk. Bit-identical
    /// to the buffered `case.trace` events because the engine's walk is
    /// deterministic in the seed.
    pub fn stream_case<S: oslay_trace::TraceSink + ?Sized>(
        &self,
        case: &WorkloadCase,
        sink: &mut S,
    ) {
        let mut engine = Engine::new(
            &self.kernel.program,
            case.app.as_ref(),
            &case.spec,
            EngineConfig::new(case.engine_seed),
        );
        if oslay_observe::flight::is_enabled() {
            // Wrap the sink in a heartbeat emitter so long streaming
            // replays chart their throughput; the forwarded stream is
            // bit-identical, and the branch costs nothing when off.
            let mut hb =
                crate::sim::HeartbeatSink::new(sink, crate::sim::HeartbeatSink::<S>::DEFAULT_EVERY);
            engine.run_into(self.config.os_blocks, &mut hb);
        } else {
            engine.run_into(self.config.os_blocks, sink);
        }
    }

    /// The unoptimized application layout for a case (if it has an app).
    #[must_use]
    pub fn app_base_layout(&self, case: &WorkloadCase) -> Option<Layout> {
        case.app.as_ref().map(|app| base_layout(app, APP_BASE))
    }

    /// The optimized (`OptA`) application layout for a case, built from
    /// that workload's own application profile.
    #[must_use]
    pub fn app_opt_layout(&self, case: &WorkloadCase, cache_size: u32) -> Option<Layout> {
        let (app, profile) = (case.app.as_ref()?, case.app_profile.as_ref()?);
        let loops = LoopAnalysis::analyze(app, profile);
        Some(optimize_app(app, profile, &loops, cache_size))
    }

    /// The Chang–Hwu application layout for a case.
    #[must_use]
    pub fn app_ch_layout(&self, case: &WorkloadCase) -> Option<Layout> {
        let (app, profile) = (case.app.as_ref()?, case.app_profile.as_ref()?);
        Some(chang_hwu_layout(app, profile, APP_BASE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Study {
        Study::generate(&StudyConfig::tiny())
    }

    #[test]
    fn study_has_four_cases_in_order() {
        let s = study();
        let names: Vec<_> = s.cases().iter().map(WorkloadCase::name).collect();
        assert_eq!(names, ["TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"]);
        assert!(s.cases()[0].app.is_some());
        assert!(s.cases()[3].app.is_none());
    }

    #[test]
    fn averaged_profile_sums_cases() {
        let s = study();
        let total: u64 = s
            .cases()
            .iter()
            .map(|c| c.os_profile.total_node_weight())
            .sum();
        assert_eq!(s.averaged_os_profile().total_node_weight(), total);
    }

    #[test]
    fn all_layout_kinds_build() {
        let s = study();
        for kind in OsLayoutKind::ALL {
            let l = s.os_layout(kind, 8192);
            assert_eq!(l.layout.num_blocks(), s.kernel().program.num_blocks());
            assert_eq!(l.layout.name(), kind.name());
        }
    }

    #[test]
    fn app_layouts_build_for_app_workloads() {
        let s = study();
        let case = &s.cases()[0];
        assert!(s.app_base_layout(case).is_some());
        assert!(s.app_opt_layout(case, 8192).is_some());
        assert!(s.app_ch_layout(case).is_some());
        let shell = &s.cases()[3];
        assert!(s.app_base_layout(shell).is_none());
    }

    #[test]
    fn generate_records_phase_spans() {
        let s = study();
        let _ = s.os_layout(OsLayoutKind::OptS, 8192);
        let totals = oslay_observe::global_recorder().totals();
        // Other tests share the global recorder, so only check presence
        // (never reset here).
        for phase in [
            "study.synth.kernel",
            "study.synth.app",
            "study.trace",
            "study.profile",
            "study.loops",
            "study.layout.OptS",
        ] {
            assert!(
                totals.iter().any(|t| t.name == phase && t.count > 0),
                "missing phase span {phase}"
            );
        }
    }

    #[test]
    fn threaded_generation_matches_sequential() {
        let a = Study::generate(&StudyConfig::tiny());
        let b = Study::generate_with_threads(&StudyConfig::tiny(), 4);
        for (ca, cb) in a.cases().iter().zip(b.cases()) {
            assert_eq!(ca.workload, cb.workload);
            assert_eq!(ca.trace, cb.trace);
            assert_eq!(ca.engine_seed, cb.engine_seed);
        }
        assert_eq!(
            a.averaged_os_profile().total_node_weight(),
            b.averaged_os_profile().total_node_weight()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = study();
        let b = study();
        assert_eq!(a.cases()[1].trace, b.cases()[1].trace);
        assert_eq!(
            a.averaged_os_profile().total_node_weight(),
            b.averaged_os_profile().total_node_weight()
        );
    }
}
