#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Must pass on an air-gapped machine with only the Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== diag smoke (tiny workload) + results schema check =="
# The smoke run writes its report into a scratch results/ so the committed
# paper-scale artifacts stay untouched; the schema check then validates
# both the fresh report and everything committed under results/.
tmpdir="$(mktemp -d)"
(
  cd "$tmpdir"
  mkdir -p results
  cargo run --release -q --manifest-path "$OLDPWD/Cargo.toml" -p oslay-bench --bin diag -- \
    --compare base opts --scale tiny > /dev/null
  cargo run --release -q --manifest-path "$OLDPWD/Cargo.toml" -p oslay-bench --bin diag -- \
    --check-results
)
rm -rf "$tmpdir"
cargo run --release -q -p oslay-bench --bin diag -- --check-results

echo "CI OK"
