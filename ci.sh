#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Must pass on an air-gapped machine with only the Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
