#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Must pass on an air-gapped machine with only the Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
# Three pedantic lints are promoted to hard errors on top of the default
# set: missing #[must_use], by-value arguments that should borrow, and
# expression-statement tails missing their semicolon.
cargo clippy --workspace --all-targets -- -D warnings \
  -D clippy::must_use_candidate \
  -D clippy::needless_pass_by_value \
  -D clippy::semicolon_if_nothing_returned

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== cargo test =="
cargo test --workspace -q

echo "== miri (optional, nightly): trace store codec roundtrips =="
if cargo +nightly miri --version > /dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -p oslay-tracestore --lib -- varint codec
else
  echo "miri unavailable (no nightly toolchain with miri); skipping"
fi

echo "== layout lint gate: every layout verifies clean =="
tmpdir="$(mktemp -d)"
cargo run --release -q -p oslay-bench --bin lint -- \
  --scale tiny --layout all --deny warnings > "$tmpdir/lint.txt"
grep -q "0 error(s), 0 warning(s)" "$tmpdir/lint.txt"

echo "== layout lint gate: mutations must fail with their KV code =="
for m in "block-swap:KV002" "loop-shift:KV004" "scf-overlap:KV005"; do
  mutation="${m%%:*}"
  code="${m##*:}"
  if cargo run --release -q -p oslay-bench --bin lint -- \
      --scale tiny --mutate "$mutation" > "$tmpdir/mutate.txt"; then
    echo "mutation $mutation passed the lint (should have failed)" >&2
    exit 1
  fi
  grep -q "$code" "$tmpdir/mutate.txt"
done
rm -rf "$tmpdir"

echo "== diag smoke (tiny workload) + results schema check =="
# The smoke run writes its report into a scratch results/ so the committed
# paper-scale artifacts stay untouched; the schema check then validates
# both the fresh report and everything committed under results/.
tmpdir="$(mktemp -d)"
(
  cd "$tmpdir"
  mkdir -p results
  cargo run --release -q --manifest-path "$OLDPWD/Cargo.toml" -p oslay-bench --bin diag -- \
    --compare base opts --scale tiny > /dev/null
  cargo run --release -q --manifest-path "$OLDPWD/Cargo.toml" -p oslay-bench --bin diag -- \
    --check-results
)
rm -rf "$tmpdir"
cargo run --release -q -p oslay-bench --bin diag -- --check-results

echo "== bench_sim smoke + schema check =="
tmpdir="$(mktemp -d)"
cargo run --release -q -p oslay-bench --bin bench_sim -- \
  --smoke --out "$tmpdir/BENCH_sim.json" --history "$tmpdir/hist.jsonl" > /dev/null

echo "== bench history trend gate (synthetic baselines, both verdicts) =="
# Against an implausibly slow history the gate must pass...
sed -E 's/"events_per_sec":[0-9.eE+-]+/"events_per_sec":0.001/g' \
  "$tmpdir/hist.jsonl" > "$tmpdir/hist_slow.jsonl"
cargo run --release -q -p oslay-bench --bin bench_sim -- \
  --smoke --out "$tmpdir/BENCH_sim.json" \
  --history "$tmpdir/hist_slow.jsonl" --gate > /dev/null
# ...and against an impossibly fast one it must fail with exit 1.
sed -E 's/"events_per_sec":[0-9.eE+-]+/"events_per_sec":1e15/g' \
  "$tmpdir/hist.jsonl" > "$tmpdir/hist_fast.jsonl"
if cargo run --release -q -p oslay-bench --bin bench_sim -- \
    --smoke --out "$tmpdir/BENCH_sim.json" \
    --history "$tmpdir/hist_fast.jsonl" --gate > /dev/null 2>&1; then
  echo "trend gate passed against an impossibly fast baseline" >&2
  exit 1
fi

echo "== thread-count determinism (1 vs 2 workers, tiny digest) =="
repo_root="$PWD"
for t in 1 2; do
  mkdir -p "$tmpdir/t$t/results"
  (
    cd "$tmpdir/t$t"
    cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
      -p oslay-bench --bin all_experiments -- \
      --scale tiny --threads "$t" > stdout.txt
  )
done
diff "$tmpdir/t1/stdout.txt" "$tmpdir/t2/stdout.txt"
# Wall-clock spans and allocator telemetry are the only fields allowed to
# differ between worker counts.
nondet='"(secs|alloc_calls|alloc_bytes|live_bytes|peak_bytes)"'
diff <(grep -vE "$nondet" "$tmpdir/t1/results/all_experiments.json") \
     <(grep -vE "$nondet" "$tmpdir/t2/results/all_experiments.json")
rm -rf "$tmpdir"

echo "== flight recorder gate: schema-valid trace, stdout unperturbed =="
tmpdir="$(mktemp -d)"
repo_root="$PWD"
(
  cd "$tmpdir"
  mkdir -p results
  cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
    -p oslay-bench --bin fig12_optimization_levels -- \
    --scale tiny --threads 2 > plain.txt 2> /dev/null
  cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
    -p oslay-bench --bin fig12_optimization_levels -- \
    --scale tiny --threads 2 --trace-out trace.json > traced.txt 2> /dev/null
)
# Tracing must not perturb the experiment's stdout...
diff "$tmpdir/plain.txt" "$tmpdir/traced.txt"
# ...and the trace must pass the trace-event schema checker (balanced
# events, per-track monotonic timestamps, spans nested in their parents)
# and render through both terminal views.
cargo run --release -q -p oslay-bench --bin perf -- \
  check --in "$tmpdir/trace.json"
cargo run --release -q -p oslay-bench --bin perf -- \
  top --in "$tmpdir/trace.json" --n 5 > /dev/null
cargo run --release -q -p oslay-bench --bin perf -- \
  timeline --in "$tmpdir/trace.json" > /dev/null
# A truncated trace must be rejected.
head -c 200 "$tmpdir/trace.json" > "$tmpdir/broken.json"
if cargo run --release -q -p oslay-bench --bin perf -- \
    check --in "$tmpdir/broken.json" > /dev/null 2>&1; then
  echo "perf check accepted a truncated trace" >&2
  exit 1
fi
rm -rf "$tmpdir"

echo "== trace store gate: record -> verify -> replay reproducibility =="
tmpdir="$(mktemp -d)"
cargo run --release -q -p oslay-bench --bin trace -- \
  record --scale tiny --threads 2 --dir "$tmpdir/archive" > /dev/null
cargo run --release -q -p oslay-bench --bin trace -- \
  verify --dir "$tmpdir/archive" --threads 2 > /dev/null
# An archived replay must be byte-identical to a live one — stdout and
# deterministic report both — at 1 and 2 workers.
for t in 1 2; do
  cargo run --release -q -p oslay-bench --bin trace -- \
    replay --scale tiny --threads "$t" --dir "$tmpdir/archive" \
    --out "$tmpdir/replay_archive_$t.json" > "$tmpdir/replay_archive_$t.txt" 2> /dev/null
  cargo run --release -q -p oslay-bench --bin trace -- \
    replay --scale tiny --threads "$t" --live \
    --out "$tmpdir/replay_live_$t.json" > "$tmpdir/replay_live_$t.txt" 2> /dev/null
done
for v in archive_2 live_1 live_2; do
  diff "$tmpdir/replay_archive_1.txt" "$tmpdir/replay_$v.txt"
  diff "$tmpdir/replay_archive_1.json" "$tmpdir/replay_$v.json"
done
# A flipped payload byte must fail verification (and name the block).
store="$tmpdir/archive/shell.otr"
byte="$(od -An -tu1 -j1000 -N1 "$store" | tr -d ' ')"
printf "$(printf '\\%03o' $(( byte ^ 255 )))" \
  | dd of="$store" bs=1 seek=1000 conv=notrunc status=none
if cargo run --release -q -p oslay-bench --bin trace -- \
    verify --file "$store" 2> "$tmpdir/verify_err.txt"; then
  echo "corrupted store passed verification" >&2
  exit 1
fi
grep -q "corrupt block" "$tmpdir/verify_err.txt"
rm -rf "$tmpdir"

echo "== sweep engine gate: single-pass vs per-point, 1 and 2 workers =="
tmpdir="$(mktemp -d)"
repo_root="$PWD"
for mode in single-pass per-point; do
  for t in 1 2; do
    d="$tmpdir/${mode}_t$t"
    mkdir -p "$d/results"
    (
      cd "$d"
      cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
        -p oslay-bench --bin fig15_cache_size_speedup -- \
        --scale tiny --threads "$t" "--$mode" > stdout.txt 2> /dev/null
    )
  done
done
# The rendered figure must be byte-identical across modes and worker
# counts...
for v in single-pass_t2 per-point_t1 per-point_t2; do
  diff "$tmpdir/single-pass_t1/stdout.txt" "$tmpdir/$v/stdout.txt"
done
# ...the run report must be worker-count invariant within each mode (wall
# clock and allocator telemetry aside)...
nondet='"(secs|alloc_calls|alloc_bytes|live_bytes|peak_bytes)"'
for mode in single-pass per-point; do
  diff <(grep -vE "$nondet" "$tmpdir/${mode}_t1/results/fig15_cache_size_speedup.json") \
       <(grep -vE "$nondet" "$tmpdir/${mode}_t2/results/fig15_cache_size_speedup.json")
done
# ...and across modes every figure section and metric must agree; only
# the phase-span counts may differ (single-pass records one replay pass
# per case, per-point one per grid point).
crossdet='"(secs|alloc_calls|alloc_bytes|live_bytes|peak_bytes|count)"'
diff <(grep -vE "$crossdet" "$tmpdir/single-pass_t1/results/fig15_cache_size_speedup.json") \
     <(grep -vE "$crossdet" "$tmpdir/per-point_t1/results/fig15_cache_size_speedup.json")
rm -rf "$tmpdir"

echo "== telemetry gate: inert probes, worker-invariant timeline, dash 0/1 =="
tmpdir="$(mktemp -d)"
repo_root="$PWD"
(
  cd "$tmpdir"
  mkdir -p results
  # Baseline: telemetry off.
  cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
    -p oslay-bench --bin fig12_optimization_levels -- \
    --scale tiny --threads 2 > plain.txt 2> /dev/null
  mv results/fig12_optimization_levels.json report_plain.json
  # Telemetry on, at 1 and 2 workers.
  for t in 1 2; do
    cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
      -p oslay-bench --bin fig12_optimization_levels -- \
      --scale tiny --threads "$t" --telemetry-out "tel$t.json" \
      > "out$t.txt" 2> /dev/null
    mv results/fig12_optimization_levels.json "report$t.json"
  done
)
# Telemetry must not perturb the experiment: stdout identical with the
# probe off, on at 1 worker, and on at 2 workers...
diff "$tmpdir/plain.txt" "$tmpdir/out1.txt"
diff "$tmpdir/out1.txt" "$tmpdir/out2.txt"
# ...and the deterministic report fields must not change either.
nondet='"(secs|alloc_calls|alloc_bytes|live_bytes|peak_bytes)"'
diff <(grep -vE "$nondet" "$tmpdir/report_plain.json") \
     <(grep -vE "$nondet" "$tmpdir/report1.json")
diff <(grep -vE "$nondet" "$tmpdir/report1.json") \
     <(grep -vE "$nondet" "$tmpdir/report2.json")
# The telemetry stream itself is simulated-time only, so worker count
# must not leak into it: byte-identical at 1 vs 2 workers.
cmp "$tmpdir/tel1.json" "$tmpdir/tel2.json"
# The dashboard validator accepts a fresh document (exit 0)...
cargo run --release -q -p oslay-bench --bin dash -- \
  --check --telemetry "$tmpdir/tel1.json"
# ...renders it through both views...
cargo run --release -q -p oslay-bench --bin dash -- \
  --term --telemetry "$tmpdir/tel1.json" > /dev/null
cargo run --release -q -p oslay-bench --bin dash -- \
  --telemetry "$tmpdir/tel1.json" --results "$tmpdir" \
  --history "$tmpdir/no_history.jsonl" --out "$tmpdir/dash.html" > /dev/null
grep -q '<svg' "$tmpdir/dash.html"
# ...and rejects a truncated document with exit 1.
head -c 120 "$tmpdir/tel1.json" > "$tmpdir/broken.json"
if cargo run --release -q -p oslay-bench --bin dash -- \
    --check --telemetry "$tmpdir/broken.json" > /dev/null 2>&1; then
  echo "dash --check accepted a truncated telemetry document" >&2
  exit 1
fi
rm -rf "$tmpdir"

echo "== layout search gate: determinism, lint-clean winner, flag checks =="
tmpdir="$(mktemp -d)"
repo_root="$PWD"
for t in 1 2; do
  d="$tmpdir/t$t"
  mkdir -p "$d/results"
  (
    cd "$d"
    cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
      -p oslay-bench --bin search -- \
      --scale tiny --threads "$t" --budget 2000 --restarts 2 \
      --layout-out layout.json > stdout.txt 2> /dev/null
  )
done
# The whole pipeline — restart fan-out, replay selection, attributed
# validation — must be byte-identical at 1 vs 2 workers: stdout, the
# exported winning layout, and the run report (telemetry fields aside).
diff "$tmpdir/t1/stdout.txt" "$tmpdir/t2/stdout.txt"
cmp "$tmpdir/t1/layout.json" "$tmpdir/t2/layout.json"
nondet='"(secs|alloc_calls|alloc_bytes|live_bytes|peak_bytes)"'
diff <(grep -vE "$nondet" "$tmpdir/t1/results/search.json") \
     <(grep -vE "$nondet" "$tmpdir/t2/results/search.json")
# The exported winner must re-assemble and lint clean from disk.
cargo run --release -q -p oslay-bench --bin lint -- \
  --scale tiny --layout-file "$tmpdir/t1/layout.json" --deny warnings \
  > "$tmpdir/lint.txt"
grep -q "0 error(s), 0 warning(s)" "$tmpdir/lint.txt"
# An invalid budget must fail fast with the usage text, not search.
if cargo run --release -q -p oslay-bench --bin search -- \
    --scale tiny --budget banana > /dev/null 2> "$tmpdir/err.txt"; then
  echo "search accepted a non-numeric --budget" >&2
  exit 1
fi
grep -q -- "--budget must be an integer" "$tmpdir/err.txt"
grep -q "common experiment flags" "$tmpdir/err.txt"
# A truncated flag (missing value) must fail the same way.
if cargo run --release -q -p oslay-bench --bin search -- \
    --scale tiny --budget > /dev/null 2> "$tmpdir/err2.txt"; then
  echo "search accepted a --budget with no value" >&2
  exit 1
fi
grep -q -- "--budget needs a value" "$tmpdir/err2.txt"
rm -rf "$tmpdir"

echo "== absint gate: static classes replay-sound, mutations detected =="
tmpdir="$(mktemp -d)"
repo_root="$PWD"
# The soundness gate must hold on every layout (including the searched
# one): zero measured misses on always-hit lines, at most one per
# persistent line, across all four workloads.
(
  cd "$tmpdir"
  mkdir -p results
  cargo run --release -q --manifest-path "$repo_root/Cargo.toml" \
    -p oslay-bench --bin analyze -- \
    --scale tiny --layout all --search-budget 2000 --gate \
    --class-out classes.json > gate.txt
)
grep -q "soundness gate: PASS" "$tmpdir/gate.txt"
# A block swap into the most contended set must withdraw at least one
# always-hit guarantee — otherwise the analysis is not actually looking
# at the layout.
cargo run --release -q -p oslay-bench --bin analyze -- \
  --scale tiny --layout opts --mutate block-swap > "$tmpdir/mutate.txt"
grep -q "always-hit guarantee(s) withdrawn" "$tmpdir/mutate.txt"
# The exported classification round-trips through --check...
cargo run --release -q -p oslay-bench --bin analyze -- \
  --check "$tmpdir/classes.json" > /dev/null
# ...and a corrupted tally must be rejected with exit 1.
sed -E 's/"count":\[[0-9]+/"count":[999999/' "$tmpdir/classes.json" \
  > "$tmpdir/broken.json"
if cargo run --release -q -p oslay-bench --bin analyze -- \
    --check "$tmpdir/broken.json" > /dev/null 2>&1; then
  echo "analyze --check accepted a corrupted classification" >&2
  exit 1
fi
rm -rf "$tmpdir"

echo "CI OK"
